// RemoteServiceClient: the ClientApi implementation that speaks the versioned wire
// protocol over TCP. Interchangeable with the in-process ServiceClient — both derive
// the whole typed surface from RequestClient, so code written against ClientApi runs
// unchanged against a local service or a remote hacd.
//
// Synchronous, one in-flight request per connection (strict request→response order —
// the session contract anyway). Transport-level failures surface through the normal
// error channel (docs/API.md "Error transport"):
//
//   kOverloaded   — not connected, connection refused/lost, short read/write: the
//                   server is unreachable, same taxonomy as admission-control
//                   rejection (a caller retries both the same way).
//   kCorrupt      — the server's bytes failed to decode; the socket is closed.
//   kUnsupported  — wire version skew; the socket is closed.
//
// The destructor disconnects; the server closes the session (and its descriptors)
// when it sees the connection drop.
#ifndef HAC_SERVER_TCP_CLIENT_H_
#define HAC_SERVER_TCP_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/server/client_api.h"
#include "src/server/wire.h"

namespace hac {

class RemoteServiceClient : public RequestClient {
 public:
  RemoteServiceClient() = default;
  ~RemoteServiceClient() override;

  RemoteServiceClient(const RemoteServiceClient&) = delete;
  RemoteServiceClient& operator=(const RemoteServiceClient&) = delete;

  // Connects to a hacd TcpServer. `host` is a dotted-quad IPv4 address (or
  // "localhost"). kBusy if the connection cannot be established; kInvalidArgument
  // for a malformed address; kUnsupported if already connected.
  Result<void> Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // Bounds how long Transport() waits for a response before giving up (SO_RCVTIMEO).
  // A server that accepts the request but never answers — wedged writer, stalled
  // reactor, half-dead network — then surfaces as kOverloaded ("receive timed out")
  // and the connection is dropped, the same retryable taxonomy as admission
  // rejection. Zero (the default) waits forever. Takes effect immediately on a live
  // connection and is re-applied by Connect().
  void SetReceiveTimeout(std::chrono::milliseconds timeout);
  std::chrono::milliseconds receive_timeout() const { return receive_timeout_; }

 protected:
  ServerResponse Transport(ServerRequest req) override;

 private:
  ServerResponse TransportFailure(ErrorCode code, std::string msg, bool drop);
  void ApplyReceiveTimeout();

  int fd_ = -1;
  FrameDecoder decoder_;
  std::chrono::milliseconds receive_timeout_{0};
};

}  // namespace hac

#endif  // HAC_SERVER_TCP_CLIENT_H_
