// Session: one connected client of the hacd service.
//
// A session owns a descriptor namespace (a BasicFdTable over the facade's HAC
// descriptors, so clients can never touch each other's open files) and a current
// working directory that relative request paths resolve against. A session is driven
// by one synchronous client at a time — the service relies on that for the session's
// own mutable state (cwd, per-descriptor offsets), which is why Chdir/ReadFd/Seek can
// run on the concurrent read path.
//
// The cursor table is the exception to that single-driver assumption: the epoll
// transport pipelines, so two read-class cursor ops of one session can overlap on
// the reader pool, and the idle sweep harvests from the reactor thread. The table
// therefore carries its own mutex, held across a whole fetch (serializing fetches
// per session — the token update must pair with the page it produced).
#ifndef HAC_SERVER_SESSION_H_
#define HAC_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/core/paging.h"
#include "src/vfs/fd_table.h"

namespace hac {

// A session descriptor: the backing HAC descriptor plus the path it was opened with
// (kept for introspection/debugging; the facade tracks the authoritative state).
struct SessionFile {
  Fd hac_fd = -1;
  std::string path;
};

// One server-side cursor: pure re-execution state (what to run + how far we got),
// never live iterators — see docs/API.md "Cursor ops". Each kFetchPage re-invokes
// HacFileSystem::ReadDirPage/SearchPage with the stored token, so nothing here can
// dangle across write batches or reindex passes.
struct ServerCursor {
  bool is_search = false;  // false: directory enumeration
  std::string path;        // absolutized at open
  std::string query;       // search cursors only
  PageToken token;
  bool exhausted = false;  // last fetch reported no more pages
  std::chrono::steady_clock::time_point last_used;
};

// The per-session cursor table. Locking: take `mu` for any access; HacService
// holds it across a full fetch, the transports call HarvestIdle() from their idle
// sweeps. Capped by ServiceOptions::max_cursors_per_session at open.
class CursorTable {
 public:
  std::mutex mu;

  // All methods below require `mu` held by the caller.
  Fd Open(ServerCursor cursor) {
    const Fd id = next_id_++;
    cursors_.emplace(id, std::move(cursor));
    return id;
  }
  ServerCursor* Find(Fd id) {
    auto it = cursors_.find(id);
    return it == cursors_.end() ? nullptr : &it->second;
  }
  bool Close(Fd id) { return cursors_.erase(id) != 0; }
  size_t OpenCount() const { return cursors_.size(); }

  // Drops cursors not used since `cutoff`; returns how many were harvested.
  size_t HarvestIdle(std::chrono::steady_clock::time_point cutoff) {
    size_t n = 0;
    for (auto it = cursors_.begin(); it != cursors_.end();) {
      if (it->second.last_used < cutoff) {
        it = cursors_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

 private:
  Fd next_id_ = 1;
  std::map<Fd, ServerCursor> cursors_;
};

class Session {
 public:
  uint64_t id() const { return id_; }
  const std::string& cwd() const { return cwd_; }
  size_t OpenDescriptors() const { return fds_.OpenCount(); }

  // The transports reach the table directly for idle harvesting (lock its mu).
  CursorTable& cursors() { return cursors_; }

 private:
  friend class HacService;

  explicit Session(uint64_t id) : id_(id) {}

  uint64_t id_;
  std::string cwd_ = "/";
  BasicFdTable<SessionFile> fds_;
  CursorTable cursors_;
};

}  // namespace hac

#endif  // HAC_SERVER_SESSION_H_
