// Session: one connected client of the hacd service.
//
// A session owns a descriptor namespace (a BasicFdTable over the facade's HAC
// descriptors, so clients can never touch each other's open files) and a current
// working directory that relative request paths resolve against. A session is driven
// by one synchronous client at a time — the service relies on that for the session's
// own mutable state (cwd, per-descriptor offsets), which is why Chdir/ReadFd/Seek can
// run on the concurrent read path.
#ifndef HAC_SERVER_SESSION_H_
#define HAC_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "src/vfs/fd_table.h"

namespace hac {

// A session descriptor: the backing HAC descriptor plus the path it was opened with
// (kept for introspection/debugging; the facade tracks the authoritative state).
struct SessionFile {
  Fd hac_fd = -1;
  std::string path;
};

class Session {
 public:
  uint64_t id() const { return id_; }
  const std::string& cwd() const { return cwd_; }
  size_t OpenDescriptors() const { return fds_.OpenCount(); }

 private:
  friend class HacService;

  explicit Session(uint64_t id) : id_(id) {}

  uint64_t id_;
  std::string cwd_ = "/";
  BasicFdTable<SessionFile> fds_;
};

}  // namespace hac

#endif  // HAC_SERVER_SESSION_H_
