#include "src/server/client_api.h"

#include <utility>

namespace hac {

Result<std::vector<DirEntry>> ClientApi::ReadDirPaged(const std::string& path,
                                                      size_t page_size) {
  auto cursor = OpenCursor(path);
  if (!cursor.ok()) {
    return cursor.error();
  }
  std::vector<DirEntry> out;
  for (;;) {
    auto page = FetchPage(cursor.value(), page_size);
    if (!page.ok()) {
      // A failed fetch auto-closes the cursor server-side; don't close again.
      return page.error();
    }
    for (auto& e : page.value().entries) {
      out.push_back(std::move(e));
    }
    if (!page.value().has_more) {
      break;
    }
  }
  auto closed = CloseCursor(cursor.value());
  if (!closed.ok()) {
    return closed.error();
  }
  return out;
}

Result<std::vector<std::string>> ClientApi::SearchPaged(const std::string& query,
                                                        const std::string& scope_dir,
                                                        size_t page_size) {
  auto cursor = OpenCursor(scope_dir, query);
  if (!cursor.ok()) {
    return cursor.error();
  }
  std::vector<std::string> out;
  for (;;) {
    auto page = FetchPage(cursor.value(), page_size);
    if (!page.ok()) {
      return page.error();
    }
    for (auto& p : page.value().paths) {
      out.push_back(std::move(p));
    }
    if (!page.value().has_more) {
      break;
    }
  }
  auto closed = CloseCursor(cursor.value());
  if (!closed.ok()) {
    return closed.error();
  }
  return out;
}

Result<void> RequestClient::VoidCall(ServerRequest req) {
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return OkResult();
}

Result<std::vector<DirEntry>> RequestClient::ReadDir(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kReadDir;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.entries);
}

Result<Stat> RequestClient::StatPath(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kStat;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return resp.st;
}

Result<Stat> RequestClient::LstatPath(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kLstat;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return resp.st;
}

Result<Fd> RequestClient::Open(const std::string& path, uint32_t flags) {
  ServerRequest req;
  req.op = ServerOp::kOpen;
  req.path = path;
  req.flags = flags;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return resp.fd;
}

Result<void> RequestClient::Close(Fd fd) {
  ServerRequest req;
  req.op = ServerOp::kClose;
  req.fd = fd;
  return VoidCall(std::move(req));
}

Result<std::string> RequestClient::Read(Fd fd, size_t max_bytes) {
  ServerRequest req;
  req.op = ServerOp::kReadFd;
  req.fd = fd;
  req.size = max_bytes;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.text);
}

Result<uint64_t> RequestClient::Seek(Fd fd, uint64_t offset) {
  ServerRequest req;
  req.op = ServerOp::kSeek;
  req.fd = fd;
  req.size = offset;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return resp.size;
}

Result<size_t> RequestClient::Write(Fd fd, const std::string& bytes) {
  ServerRequest req;
  req.op = ServerOp::kWriteFd;
  req.fd = fd;
  req.aux = bytes;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return static_cast<size_t>(resp.size);
}

Result<void> RequestClient::WriteFile(const std::string& path,
                                      const std::string& content) {
  ServerRequest req;
  req.op = ServerOp::kWriteFile;
  req.path = path;
  req.aux = content;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Mkdir(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kMkdir;
  req.path = path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Unlink(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kUnlink;
  req.path = path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Rmdir(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kRmdir;
  req.path = path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Rename(const std::string& from, const std::string& to) {
  ServerRequest req;
  req.op = ServerOp::kRename;
  req.path = from;
  req.aux = to;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Symlink(const std::string& target,
                                    const std::string& link_path) {
  ServerRequest req;
  req.op = ServerOp::kSymlink;
  req.path = link_path;
  req.aux = target;
  return VoidCall(std::move(req));
}

Result<std::string> RequestClient::ReadLink(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kReadLink;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.text);
}

Result<std::string> RequestClient::Chdir(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kChdir;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.text);
}

Result<void> RequestClient::SMkdir(const std::string& path, const std::string& query) {
  ServerRequest req;
  req.op = ServerOp::kSMkdir;
  req.path = path;
  req.aux = query;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::SetQuery(const std::string& path,
                                     const std::string& query) {
  ServerRequest req;
  req.op = ServerOp::kSetQuery;
  req.path = path;
  req.aux = query;
  return VoidCall(std::move(req));
}

Result<std::string> RequestClient::GetQuery(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kGetQuery;
  req.path = path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.text);
}

Result<std::vector<std::string>> RequestClient::Search(const std::string& query,
                                                       const std::string& scope_dir) {
  ServerRequest req;
  req.op = ServerOp::kSearch;
  req.path = scope_dir;
  req.aux = query;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.paths);
}

Result<LinkClassView> RequestClient::GetLinkClasses(const std::string& dir_path) {
  ServerRequest req;
  req.op = ServerOp::kGetLinkClasses;
  req.path = dir_path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.links);
}

Result<void> RequestClient::PromoteLink(const std::string& link_path) {
  ServerRequest req;
  req.op = ServerOp::kPromoteLink;
  req.path = link_path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::DemoteLink(const std::string& link_path) {
  ServerRequest req;
  req.op = ServerOp::kDemoteLink;
  req.path = link_path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Prohibit(const std::string& dir_path,
                                     const std::string& file_path) {
  ServerRequest req;
  req.op = ServerOp::kProhibit;
  req.path = dir_path;
  req.aux = file_path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Unprohibit(const std::string& dir_path,
                                       const std::string& file_path) {
  ServerRequest req;
  req.op = ServerOp::kUnprohibit;
  req.path = dir_path;
  req.aux = file_path;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Reindex() {
  ServerRequest req;
  req.op = ServerOp::kReindex;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::SSync(const std::string& path) {
  ServerRequest req;
  req.op = ServerOp::kSSync;
  req.path = path;
  return VoidCall(std::move(req));
}

Result<std::vector<std::string>> RequestClient::SAct(const std::string& link_path) {
  ServerRequest req;
  req.op = ServerOp::kSAct;
  req.path = link_path;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.paths);
}

Result<Fd> RequestClient::OpenCursor(const std::string& path,
                                     const std::string& query) {
  ServerRequest req;
  req.op = ServerOp::kOpenCursor;
  req.path = path;
  req.aux = query;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return resp.fd;
}

Result<CursorPage> RequestClient::FetchPage(Fd cursor, size_t max_entries) {
  ServerRequest req;
  req.op = ServerOp::kFetchPage;
  req.fd = cursor;
  req.size = max_entries;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  CursorPage page;
  page.entries = std::move(resp.entries);
  page.paths = std::move(resp.paths);
  page.has_more = resp.size != 0;
  return page;
}

Result<void> RequestClient::CloseCursor(Fd cursor) {
  ServerRequest req;
  req.op = ServerOp::kCloseCursor;
  req.fd = cursor;
  return VoidCall(std::move(req));
}

Result<void> RequestClient::Checkpoint() {
  ServerRequest req;
  req.op = ServerOp::kCheckpoint;
  return VoidCall(std::move(req));
}

StatsSnapshot RequestClient::Stats() {
  ServerRequest req;
  req.op = ServerOp::kStats;
  return Call(std::move(req)).stats;
}

Result<std::string> RequestClient::Introspect(const std::string& what) {
  ServerRequest req;
  req.op = ServerOp::kIntrospect;
  req.aux = what;
  ServerResponse resp = Call(std::move(req));
  if (!resp.ok()) {
    return resp.error;
  }
  return std::move(resp.text);
}

}  // namespace hac
