#include "src/baseline/pseudo_fs.h"

#include <cstring>

namespace hac {

PseudoFs::PseudoFs(FsInterface* backing) : backing_(backing) {}

void PseudoFs::EncodeStat(ByteWriter& w, const Stat& st) {
  w.PutU64(st.inode);
  w.PutU8(static_cast<uint8_t>(st.type));
  w.PutU64(st.size);
  w.PutU64(st.mtime);
  w.PutU32(st.nlink);
}

Result<Stat> PseudoFs::DecodeStat(ByteReader& r) {
  Stat st;
  HAC_ASSIGN_OR_RETURN(st.inode, r.GetU64());
  HAC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  st.type = static_cast<NodeType>(type);
  HAC_ASSIGN_OR_RETURN(st.size, r.GetU64());
  HAC_ASSIGN_OR_RETURN(st.mtime, r.GetU64());
  HAC_ASSIGN_OR_RETURN(st.nlink, r.GetU32());
  return st;
}

Result<std::vector<uint8_t>> PseudoFs::Call(OpCode op, const std::vector<uint8_t>& request) {
  // Client -> channel: the request is copied into the channel buffer (one "message").
  channel_.assign(request.begin(), request.end());
  ++messages_;
  channel_bytes_ += channel_.size();
  // Server side picks the message out of the channel.
  ByteReader req(channel_);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> reply, Dispatch(op, req));
  // Server -> channel -> client: the reply is copied back.
  channel_.assign(reply.begin(), reply.end());
  ++messages_;
  channel_bytes_ += channel_.size();
  return std::vector<uint8_t>(channel_.begin(), channel_.end());
}

Result<std::vector<uint8_t>> PseudoFs::Dispatch(OpCode op, ByteReader& req) {
  ByteWriter reply;
  switch (op) {
    case OpCode::kMkdir: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_RETURN_IF_ERROR(backing_->Mkdir(path));
      break;
    }
    case OpCode::kRmdir: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_RETURN_IF_ERROR(backing_->Rmdir(path));
      break;
    }
    case OpCode::kReadDir: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, backing_->ReadDir(path));
      reply.PutVarint(entries.size());
      for (const DirEntry& e : entries) {
        reply.PutString(e.name);
        reply.PutU8(static_cast<uint8_t>(e.type));
        reply.PutU64(e.inode);
      }
      break;
    }
    case OpCode::kOpen: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_ASSIGN_OR_RETURN(uint32_t flags, req.GetU32());
      HAC_ASSIGN_OR_RETURN(Fd fd, backing_->Open(path, flags));
      reply.PutU32(static_cast<uint32_t>(fd));
      break;
    }
    case OpCode::kClose: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_RETURN_IF_ERROR(backing_->Close(static_cast<Fd>(fd)));
      break;
    }
    case OpCode::kRead: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_ASSIGN_OR_RETURN(uint64_t n, req.GetVarint());
      std::vector<uint8_t> buf(n);
      HAC_ASSIGN_OR_RETURN(size_t got,
                           backing_->Read(static_cast<Fd>(fd), buf.data(), buf.size()));
      reply.PutVarint(got);
      reply.PutBytes(buf.data(), got);
      break;
    }
    case OpCode::kWrite: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_ASSIGN_OR_RETURN(std::string data, req.GetString());
      HAC_ASSIGN_OR_RETURN(size_t put,
                           backing_->Write(static_cast<Fd>(fd), data.data(), data.size()));
      reply.PutVarint(put);
      break;
    }
    case OpCode::kSeek: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_ASSIGN_OR_RETURN(uint64_t offset, req.GetU64());
      HAC_ASSIGN_OR_RETURN(uint64_t pos, backing_->Seek(static_cast<Fd>(fd), offset));
      reply.PutU64(pos);
      break;
    }
    case OpCode::kUnlink: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_RETURN_IF_ERROR(backing_->Unlink(path));
      break;
    }
    case OpCode::kRename: {
      HAC_ASSIGN_OR_RETURN(std::string from, req.GetString());
      HAC_ASSIGN_OR_RETURN(std::string to, req.GetString());
      HAC_RETURN_IF_ERROR(backing_->Rename(from, to));
      break;
    }
    case OpCode::kSymlink: {
      HAC_ASSIGN_OR_RETURN(std::string target, req.GetString());
      HAC_ASSIGN_OR_RETURN(std::string link_path, req.GetString());
      HAC_RETURN_IF_ERROR(backing_->Symlink(target, link_path));
      break;
    }
    case OpCode::kReadLink: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_ASSIGN_OR_RETURN(std::string target, backing_->ReadLink(path));
      reply.PutString(target);
      break;
    }
    case OpCode::kStat: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_ASSIGN_OR_RETURN(Stat st, backing_->StatPath(path));
      EncodeStat(reply, st);
      break;
    }
    case OpCode::kLstat: {
      HAC_ASSIGN_OR_RETURN(std::string path, req.GetString());
      HAC_ASSIGN_OR_RETURN(Stat st, backing_->LstatPath(path));
      EncodeStat(reply, st);
      break;
    }
    case OpCode::kReadBulk: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_ASSIGN_OR_RETURN(uint64_t n, req.GetVarint());
      HAC_ASSIGN_OR_RETURN(size_t got,
                           backing_->Read(static_cast<Fd>(fd), shared_read_buf_, n));
      reply.PutVarint(got);  // data already sits in the shared buffer
      break;
    }
    case OpCode::kWriteBulk: {
      HAC_ASSIGN_OR_RETURN(uint32_t fd, req.GetU32());
      HAC_ASSIGN_OR_RETURN(uint64_t n, req.GetVarint());
      HAC_ASSIGN_OR_RETURN(size_t put,
                           backing_->Write(static_cast<Fd>(fd), shared_write_buf_, n));
      reply.PutVarint(put);
      break;
    }
  }
  return reply.TakeBuffer();
}

Result<void> PseudoFs::Mkdir(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_RETURN_IF_ERROR(Call(OpCode::kMkdir, req.buffer()));
  return OkResult();
}

Result<void> PseudoFs::Rmdir(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_RETURN_IF_ERROR(Call(OpCode::kRmdir, req.buffer()));
  return OkResult();
}

Result<std::vector<DirEntry>> PseudoFs::ReadDir(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kReadDir, req.buffer()));
  ByteReader r(raw);
  HAC_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::vector<DirEntry> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DirEntry e;
    HAC_ASSIGN_OR_RETURN(e.name, r.GetString());
    HAC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    e.type = static_cast<NodeType>(type);
    HAC_ASSIGN_OR_RETURN(e.inode, r.GetU64());
    out.push_back(std::move(e));
  }
  return out;
}

Result<Fd> PseudoFs::Open(const std::string& path, uint32_t flags) {
  ByteWriter req;
  req.PutString(path);
  req.PutU32(flags);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kOpen, req.buffer()));
  ByteReader r(raw);
  HAC_ASSIGN_OR_RETURN(uint32_t fd, r.GetU32());
  return static_cast<Fd>(fd);
}

Result<void> PseudoFs::Close(Fd fd) {
  ByteWriter req;
  req.PutU32(static_cast<uint32_t>(fd));
  HAC_RETURN_IF_ERROR(Call(OpCode::kClose, req.buffer()));
  return OkResult();
}

Result<size_t> PseudoFs::Read(Fd fd, void* buf, size_t n) {
  if (n > kInlineLimit) {
    // Bulk path: the data lands in the shared buffer; only control info is marshalled.
    shared_read_buf_ = buf;
    ByteWriter req;
    req.PutU32(static_cast<uint32_t>(fd));
    req.PutVarint(n);
    HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kReadBulk, req.buffer()));
    shared_read_buf_ = nullptr;
    ByteReader r(raw);
    HAC_ASSIGN_OR_RETURN(uint64_t got, r.GetVarint());
    return static_cast<size_t>(got);
  }
  ByteWriter req;
  req.PutU32(static_cast<uint32_t>(fd));
  req.PutVarint(n);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kRead, req.buffer()));
  ByteReader r(raw);
  HAC_ASSIGN_OR_RETURN(uint64_t got, r.GetVarint());
  if (got > n || got > r.remaining()) {
    return Error(ErrorCode::kCorrupt, "short read reply");
  }
  // Final copy out of the channel into the caller's buffer.
  HAC_RETURN_IF_ERROR(r.GetBytes(buf, got));
  return static_cast<size_t>(got);
}

Result<size_t> PseudoFs::Write(Fd fd, const void* buf, size_t n) {
  if (n > kInlineLimit) {
    shared_write_buf_ = buf;
    ByteWriter req;
    req.PutU32(static_cast<uint32_t>(fd));
    req.PutVarint(n);
    HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                         Call(OpCode::kWriteBulk, req.buffer()));
    shared_write_buf_ = nullptr;
    ByteReader r(raw);
    HAC_ASSIGN_OR_RETURN(uint64_t put, r.GetVarint());
    return static_cast<size_t>(put);
  }
  ByteWriter req;
  req.PutU32(static_cast<uint32_t>(fd));
  req.PutString(std::string_view(static_cast<const char*>(buf), n));
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kWrite, req.buffer()));
  ByteReader r(raw);
  HAC_ASSIGN_OR_RETURN(uint64_t put, r.GetVarint());
  return static_cast<size_t>(put);
}

Result<uint64_t> PseudoFs::Seek(Fd fd, uint64_t offset) {
  ByteWriter req;
  req.PutU32(static_cast<uint32_t>(fd));
  req.PutU64(offset);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kSeek, req.buffer()));
  ByteReader r(raw);
  return r.GetU64();
}

Result<void> PseudoFs::Unlink(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_RETURN_IF_ERROR(Call(OpCode::kUnlink, req.buffer()));
  return OkResult();
}

Result<void> PseudoFs::Rename(const std::string& from, const std::string& to) {
  ByteWriter req;
  req.PutString(from);
  req.PutString(to);
  HAC_RETURN_IF_ERROR(Call(OpCode::kRename, req.buffer()));
  return OkResult();
}

Result<void> PseudoFs::Symlink(const std::string& target, const std::string& link_path) {
  ByteWriter req;
  req.PutString(target);
  req.PutString(link_path);
  HAC_RETURN_IF_ERROR(Call(OpCode::kSymlink, req.buffer()));
  return OkResult();
}

Result<std::string> PseudoFs::ReadLink(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kReadLink, req.buffer()));
  ByteReader r(raw);
  return r.GetString();
}

Result<Stat> PseudoFs::StatPath(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kStat, req.buffer()));
  ByteReader r(raw);
  return DecodeStat(r);
}

Result<Stat> PseudoFs::LstatPath(const std::string& path) {
  ByteWriter req;
  req.PutString(path);
  HAC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Call(OpCode::kLstat, req.buffer()));
  ByteReader r(raw);
  return DecodeStat(r);
}

}  // namespace hac
