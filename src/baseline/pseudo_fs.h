// Pseudo-file-system-like layer (Table 2's second comparator).
//
// The pseudo-file-system approach (Welch & Ousterhout's pseudo-devices lineage; the
// paper cites [13]) services file operations in a user-level server reached through a
// message channel. We model the cost structure: each call is marshalled into a request
// message, moved through an in-process channel, unmarshalled and dispatched by a server
// loop, and its reply marshalled back. Small payloads travel inline in the message;
// bulk reads/writes use the shared-memory buffer (as Sprite's pseudo-devices do) and
// pay only the control-message round trip.
#ifndef HAC_BASELINE_PSEUDO_FS_H_
#define HAC_BASELINE_PSEUDO_FS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/serializer.h"
#include "src/vfs/fs_interface.h"

namespace hac {

class PseudoFs final : public FsInterface {
 public:
  // `backing` is not owned and must outlive this object.
  explicit PseudoFs(FsInterface* backing);

  Result<void> Mkdir(const std::string& path) override;
  Result<void> Rmdir(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Result<Fd> Open(const std::string& path, uint32_t flags) override;
  Result<void> Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t n) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t n) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Result<void> Unlink(const std::string& path) override;
  Result<void> Rename(const std::string& from, const std::string& to) override;
  Result<void> Symlink(const std::string& target, const std::string& link_path) override;
  Result<std::string> ReadLink(const std::string& path) override;
  Result<Stat> StatPath(const std::string& path) override;
  Result<Stat> LstatPath(const std::string& path) override;

  uint64_t MessagesExchanged() const { return messages_; }
  uint64_t BytesThroughChannel() const { return channel_bytes_; }

 private:
  enum class OpCode : uint8_t {
    kMkdir = 1, kRmdir, kReadDir, kOpen, kClose, kRead, kWrite, kSeek,
    kUnlink, kRename, kSymlink, kReadLink, kStat, kLstat,
    kReadBulk, kWriteBulk,  // payload via the shared-memory buffer
  };

  // Payloads at or below this size travel inline in the message.
  static constexpr size_t kInlineLimit = 256;

  // Marshals a request, "sends" it through the channel, and dispatches it in the
  // server. Returns the server's raw reply buffer.
  Result<std::vector<uint8_t>> Call(OpCode op, const std::vector<uint8_t>& request);

  // Server side: decode the request, run it against the backing FS, encode the reply.
  Result<std::vector<uint8_t>> Dispatch(OpCode op, ByteReader& req);

  static void EncodeStat(ByteWriter& w, const Stat& st);
  static Result<Stat> DecodeStat(ByteReader& r);

  FsInterface* backing_;
  std::vector<uint8_t> channel_;  // the "message channel" buffer
  // The "shared memory" region: client and server sides both see these during a bulk
  // call (set by the client immediately before Call()).
  void* shared_read_buf_ = nullptr;
  const void* shared_write_buf_ = nullptr;
  uint64_t messages_ = 0;
  uint64_t channel_bytes_ = 0;
};

}  // namespace hac

#endif  // HAC_BASELINE_PSEUDO_FS_H_
