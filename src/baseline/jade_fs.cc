#include "src/baseline/jade_fs.h"

#include <vector>

#include "src/vfs/path.h"

namespace hac {

JadeFs::JadeFs(FsInterface* backing) : backing_(backing) {
  logical_to_physical_.emplace("/", "/");
}

Result<std::string> JadeFs::Translate(const std::string& logical) {
  std::string norm = NormalizePath(logical);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + logical);
  }
  // Component-wise walk: each mapped prefix is looked up in the translation table; the
  // first unmapped component ends the walk (files are not mapped, directories are).
  std::string physical = "/";
  std::string logical_prefix = "/";
  for (const std::string& comp : SplitPath(norm)) {
    logical_prefix = JoinPath(logical_prefix == "/" ? "" : logical_prefix, comp);
    auto it = logical_to_physical_.find(logical_prefix);
    if (it != logical_to_physical_.end()) {
      physical = it->second;
    } else {
      physical = JoinPath(physical == "/" ? "" : physical, comp);
    }
  }
  return physical;
}

void JadeFs::RecordMapping(const std::string& logical, const std::string& physical) {
  logical_to_physical_[logical] = physical;
}

void JadeFs::DropMappingSubtree(const std::string& logical) {
  for (auto it = logical_to_physical_.begin(); it != logical_to_physical_.end();) {
    if (PathIsWithin(it->first, logical)) {
      it = logical_to_physical_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<void> JadeFs::Mkdir(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  HAC_RETURN_IF_ERROR(backing_->Mkdir(physical));
  RecordMapping(NormalizePath(path), physical);
  return OkResult();
}

Result<void> JadeFs::Rmdir(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  HAC_RETURN_IF_ERROR(backing_->Rmdir(physical));
  DropMappingSubtree(NormalizePath(path));
  return OkResult();
}

Result<std::vector<DirEntry>> JadeFs::ReadDir(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  return backing_->ReadDir(physical);
}

Result<Fd> JadeFs::Open(const std::string& path, uint32_t flags) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  HAC_ASSIGN_OR_RETURN(Fd fd, backing_->Open(physical, flags));
  open_bookkeeping_[fd] = 0;
  return fd;
}

Result<void> JadeFs::Close(Fd fd) {
  open_bookkeeping_.erase(fd);
  return backing_->Close(fd);
}

Result<size_t> JadeFs::Read(Fd fd, void* buf, size_t n) {
  auto it = open_bookkeeping_.find(fd);
  if (it != open_bookkeeping_.end()) {
    ++it->second;
  }
  return backing_->Read(fd, buf, n);
}

Result<size_t> JadeFs::Write(Fd fd, const void* buf, size_t n) {
  auto it = open_bookkeeping_.find(fd);
  if (it != open_bookkeeping_.end()) {
    ++it->second;
  }
  return backing_->Write(fd, buf, n);
}

Result<uint64_t> JadeFs::Seek(Fd fd, uint64_t offset) { return backing_->Seek(fd, offset); }

Result<void> JadeFs::Unlink(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  return backing_->Unlink(physical);
}

Result<void> JadeFs::Rename(const std::string& from, const std::string& to) {
  HAC_ASSIGN_OR_RETURN(std::string phys_from, Translate(from));
  HAC_ASSIGN_OR_RETURN(std::string phys_to, Translate(to));
  HAC_RETURN_IF_ERROR(backing_->Rename(phys_from, phys_to));
  std::string norm_from = NormalizePath(from);
  std::string norm_to = NormalizePath(to);
  // Remap the moved subtree.
  std::vector<std::pair<std::string, std::string>> moved;
  for (const auto& [logical, physical] : logical_to_physical_) {
    if (PathIsWithin(logical, norm_from)) {
      moved.emplace_back(RebasePath(logical, norm_from, norm_to),
                         RebasePath(physical, phys_from, phys_to));
    }
  }
  DropMappingSubtree(norm_from);
  for (auto& [logical, physical] : moved) {
    RecordMapping(logical, physical);
  }
  return OkResult();
}

Result<void> JadeFs::Symlink(const std::string& target, const std::string& link_path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(link_path));
  return backing_->Symlink(target, physical);
}

Result<std::string> JadeFs::ReadLink(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  return backing_->ReadLink(physical);
}

Result<Stat> JadeFs::StatPath(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  return backing_->StatPath(physical);
}

Result<Stat> JadeFs::LstatPath(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(std::string physical, Translate(path));
  return backing_->LstatPath(physical);
}

}  // namespace hac
