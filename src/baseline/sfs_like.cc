#include "src/baseline/sfs_like.h"

#include <algorithm>

#include "src/index/tokenizer.h"
#include "src/support/string_util.h"
#include "src/vfs/path.h"

namespace hac {

SfsLikeSystem::SfsLikeSystem(FsInterface* backing) : backing_(backing) {}

void SfsLikeSystem::TextTransducer(const std::string& content, FileAttrs& out) {
  Tokenizer tokenizer;
  for (const std::string& token : tokenizer.UniqueTokens(content)) {
    out.attrs["text"].push_back(token);
  }
}

void SfsLikeSystem::MailTransducer(const std::string& content, FileAttrs& out) {
  // RFC-822-ish headers until the first blank line.
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      end = content.size();
    }
    std::string_view line(content.data() + start, end - start);
    if (TrimWhitespace(line).empty()) {
      break;
    }
    size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string key = ToLowerAscii(TrimWhitespace(line.substr(0, colon)));
      std::string value = ToLowerAscii(TrimWhitespace(line.substr(colon + 1)));
      if (key == "from" || key == "to" || key == "subject") {
        // SFS stores the first token of the value for people fields, whole words for
        // subjects; we keep all tokens, which is strictly more permissive.
        Tokenizer tokenizer;
        for (const std::string& token : tokenizer.UniqueTokens(value)) {
          out.attrs[key].push_back(token);
        }
      }
    }
    start = end + 1;
  }
}

Result<void> SfsLikeSystem::IndexAll(const std::string& root) {
  files_.clear();
  HAC_ASSIGN_OR_RETURN(std::vector<std::string> tree, backing_->ListTree(root));
  for (const std::string& path : tree) {
    auto st = backing_->StatPath(path);
    if (!st.ok() || st.value().type != NodeType::kFile) {
      continue;
    }
    auto content = backing_->ReadFileToString(path);
    if (!content.ok()) {
      continue;
    }
    FileAttrs fa;
    fa.path = path;
    TextTransducer(content.value(), fa);
    if (EndsWith(path, ".eml") || EndsWith(path, ".mail")) {
      MailTransducer(content.value(), fa);
    }
    // Every file also carries its own name and extension as attributes ("name:",
    // "ext:"), like SFS's directory transducer.
    std::string base = BaseName(path);
    fa.attrs["name"].push_back(ToLowerAscii(base));
    size_t dot = base.rfind('.');
    if (dot != std::string::npos && dot + 1 < base.size()) {
      fa.attrs["ext"].push_back(ToLowerAscii(base.substr(dot + 1)));
    }
    for (auto& [attr, values] : fa.attrs) {
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
    }
    files_.push_back(std::move(fa));
  }
  return OkResult();
}

Result<std::vector<std::string>> SfsLikeSystem::Lookup(
    const std::string& virtual_path) const {
  std::string norm = NormalizePath(virtual_path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "virtual path must be absolute");
  }
  // Parse the attribute:value components; the SFS model supports nothing else.
  std::vector<std::pair<std::string, std::string>> conjuncts;
  for (const std::string& comp : SplitPath(norm)) {
    size_t colon = comp.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= comp.size()) {
      return Error(ErrorCode::kUnsupported,
                   "SFS virtual directories are attribute:value chains; got '" + comp +
                       "'");
    }
    conjuncts.emplace_back(ToLowerAscii(comp.substr(0, colon)),
                           ToLowerAscii(comp.substr(colon + 1)));
  }
  std::vector<std::string> out;
  for (const FileAttrs& fa : files_) {
    bool all = true;
    for (const auto& [attr, value] : conjuncts) {
      auto it = fa.attrs.find(attr);
      if (it == fa.attrs.end() ||
          !std::binary_search(it->second.begin(), it->second.end(), value)) {
        all = false;
        break;
      }
    }
    if (all) {
      out.push_back(fa.path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> SfsLikeSystem::AttributeNames() const {
  std::vector<std::string> out;
  for (const FileAttrs& fa : files_) {
    for (const auto& [attr, values] : fa.attrs) {
      out.push_back(attr);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hac
