// Jade-like user-level file system layer (Table 2 comparator).
//
// Jade (Rao & Peterson, 1993) gives each user a private logical name space mapped onto
// physical file systems: every call translates a logical path through per-directory
// mapping tables before reaching the underlying system. We model that faithfully at the
// cost level: a logical->physical translation table maintained per directory, a
// per-call pathname translation walk, and per-open descriptor bookkeeping — but no
// content-based machinery (which is HAC's extra cost in the paper's comparison).
#ifndef HAC_BASELINE_JADE_FS_H_
#define HAC_BASELINE_JADE_FS_H_

#include <string>
#include <unordered_map>

#include "src/vfs/fs_interface.h"

namespace hac {

class JadeFs final : public FsInterface {
 public:
  // `backing` is not owned and must outlive this object.
  explicit JadeFs(FsInterface* backing);

  Result<void> Mkdir(const std::string& path) override;
  Result<void> Rmdir(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Result<Fd> Open(const std::string& path, uint32_t flags) override;
  Result<void> Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t n) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t n) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Result<void> Unlink(const std::string& path) override;
  Result<void> Rename(const std::string& from, const std::string& to) override;
  Result<void> Symlink(const std::string& target, const std::string& link_path) override;
  Result<std::string> ReadLink(const std::string& path) override;
  Result<Stat> StatPath(const std::string& path) override;
  Result<Stat> LstatPath(const std::string& path) override;

  size_t TableEntries() const { return logical_to_physical_.size(); }

 private:
  // Walks the logical path component-by-component through the mapping tables,
  // producing the physical path (Jade's per-call translation cost).
  Result<std::string> Translate(const std::string& logical);

  void RecordMapping(const std::string& logical, const std::string& physical);
  void DropMappingSubtree(const std::string& logical);

  FsInterface* backing_;
  // logical directory path -> physical directory path. Identity in this model, but the
  // walk and the table maintenance are the measured work.
  std::unordered_map<std::string, std::string> logical_to_physical_;
  std::unordered_map<Fd, uint64_t> open_bookkeeping_;  // fd -> ops through it
};

}  // namespace hac

#endif  // HAC_BASELINE_JADE_FS_H_
