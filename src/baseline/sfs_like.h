// SFS-like virtual directories: a minimal re-creation of the MIT Semantic File System
// access model (Gifford et al. 1991), the paper's primary related-work comparison.
//
// In SFS, a *virtual directory* is named by its query: listing
// /virtual/author:smith/text:fingerprint materializes links to files whose attributes
// match the conjunction. Virtual directories are read-only views computed on demand —
// they do not live in the real file system, cannot be edited, and evaporate when the
// query changes.
//
// This model demonstrates by construction the four §5 limitations HAC removes:
//   1. queries are AND-chains of attribute:value pairs only;
//   2. virtual directories are not part of the physical name space (no files inside);
//   3. results cannot be customized (no permanent/prohibited links);
//   4. no sharing of classifications (views are per-lookup, nothing is stored).
//
// Transducers: like SFS, typed extractors derive attributes from file content — here a
// generic text transducer (attribute "text") and a mail transducer ("from", "to",
// "subject") chosen by file extension.
#ifndef HAC_BASELINE_SFS_LIKE_H_
#define HAC_BASELINE_SFS_LIKE_H_

#include <map>
#include <string>
#include <vector>

#include "src/support/result.h"
#include "src/vfs/fs_interface.h"

namespace hac {

class SfsLikeSystem {
 public:
  // `backing` is the real file system the virtual tree points into; not owned.
  explicit SfsLikeSystem(FsInterface* backing);

  // (Re-)runs the transducers over every file under `root` in the backing system.
  Result<void> IndexAll(const std::string& root = "/");

  // Resolves a virtual path: each component is "attribute:value"; the result is the
  // conjunction, as a list of physical paths (what an `ls` of the virtual directory
  // would show as links). Example: Lookup("/author:alice/text:fingerprint").
  Result<std::vector<std::string>> Lookup(const std::string& virtual_path) const;

  // The attribute names a "field-names" listing would show (SFS exposes these).
  std::vector<std::string> AttributeNames() const;

  size_t IndexedFiles() const { return files_.size(); }

 private:
  struct FileAttrs {
    std::string path;
    // attribute -> set of values (sorted).
    std::map<std::string, std::vector<std::string>> attrs;
  };

  static void TextTransducer(const std::string& content, FileAttrs& out);
  static void MailTransducer(const std::string& content, FileAttrs& out);

  FsInterface* backing_;
  std::vector<FileAttrs> files_;
};

}  // namespace hac

#endif  // HAC_BASELINE_SFS_LIKE_H_
