// The CBA (content-based access) mechanism interface between HAC and its indexer.
//
// The paper stresses that HAC talks to Glimpse through "a simple, well defined API ...
// general enough to integrate any CBA mechanism". This is that API. HAC core only ever
// uses this interface; InvertedIndex (index/inverted_index.h) is the default
// implementation, and tests substitute instrumented fakes.
//
// Results are bitmaps over the dense DocId space (the paper's representation choice);
// the DirResolver callback lets the mechanism pull the *current link set* of a directory
// whose path appears inside a query — exactly the hook section 2.5 describes.
#ifndef HAC_INDEX_CBA_H_
#define HAC_INDEX_CBA_H_

#include <functional>
#include <string>

#include "src/index/query.h"
#include "src/support/bitmap.h"
#include "src/support/result.h"

namespace hac {

// Dense document id. HAC core allocates one per indexed file (and per imported remote
// document) and owns the DocId <-> path mapping.
using DocId = uint32_t;

// Resolves a bound dir() reference to the directory's current link set.
using DirResolver = std::function<Result<Bitmap>(DirUid uid)>;

struct CbaStats {
  uint64_t documents = 0;
  uint64_t terms = 0;
  uint64_t postings = 0;
  uint64_t queries_evaluated = 0;
};

class CbaMechanism {
 public:
  virtual ~CbaMechanism() = default;

  // (Re-)indexes one document. Replaces any previous content for `doc`.
  virtual Result<void> IndexDocument(DocId doc, std::string_view text) = 0;

  virtual Result<void> RemoveDocument(DocId doc) = 0;

  // Evaluates `query` against the index, restricted to `scope`. NOT is interpreted
  // relative to `scope` (scope AND NOT operand). `resolve_dir` may be null when the
  // query contains no dir() references.
  virtual Result<Bitmap> Evaluate(const QueryExpr& query, const Bitmap& scope,
                                  const DirResolver* resolve_dir) = 0;

  // True iff `text` alone satisfies the content part of `query` (dir() refs are treated
  // as true). Used by `sact` to pull matching lines out of a file.
  virtual bool MatchesText(const QueryExpr& query, std::string_view text) const = 0;

  virtual CbaStats Stats() const = 0;

  // Approximate resident size of the index structures, for the paper's space numbers.
  virtual size_t IndexSizeBytes() const = 0;
};

}  // namespace hac

#endif  // HAC_INDEX_CBA_H_
