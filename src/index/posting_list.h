// Per-term posting list: sorted unique DocIds with O(log n) membership and ordered
// insertion. Documents are usually appended in increasing id order (the fast path);
// re-indexing after deletions may insert out of order.
#ifndef HAC_INDEX_POSTING_LIST_H_
#define HAC_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <vector>

#include "src/support/bitmap.h"

namespace hac {

class PostingList {
 public:
  void Add(uint32_t doc);
  void Remove(uint32_t doc);
  bool Contains(uint32_t doc) const;

  size_t Size() const { return docs_.size(); }
  bool Empty() const { return docs_.empty(); }
  size_t SizeBytes() const { return docs_.capacity() * sizeof(uint32_t); }

  // OR-merges this list into `out` (used by prefix queries).
  void UnionInto(Bitmap& out) const;

  Bitmap ToBitmap() const;

  // Intersection of two sorted unique id vectors, ascending. Skewed operands (one
  // list kGallopSkew× the other or more) intersect by exponential ("galloping")
  // search over the larger list — O(|small| · log(|large|/|small|)) — instead of the
  // linear merge, so `rare AND common` never pays for the common term's full list.
  static constexpr size_t kGallopSkew = 16;
  static std::vector<uint32_t> IntersectSorted(const std::vector<uint32_t>& a,
                                               const std::vector<uint32_t>& b);

  const std::vector<uint32_t>& docs() const { return docs_; }

 private:
  std::vector<uint32_t> docs_;
};

}  // namespace hac

#endif  // HAC_INDEX_POSTING_LIST_H_
