// Query language AST.
//
// Grammar (case-insensitive keywords; '&' '|' '!' accepted as symbols):
//
//   expr    := or
//   or      := and ( OR and )*
//   and     := unary ( [AND] unary )*          -- adjacency is implicit AND
//   unary   := NOT unary | primary
//   primary := '(' expr ')' | ALL | TERM | TERM'*' | TERM'~'K | dir( PATH )
//
// TERM~K is approximate matching with edit distance K in 1..3 (Glimpse's agrep
// heritage: "fingerprnt~1" matches fingerprint).
//
// `dir(/some/path)` names another directory: its *current link set* (the paper's edited
// query result) is used as a sub-result. After parsing, HAC binds each DirRef to the
// directory's stable UID (see core/uid_map.h) so renames cannot break queries; the
// pretty-printer maps UIDs back to current paths.
#ifndef HAC_INDEX_QUERY_H_
#define HAC_INDEX_QUERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace hac {

// Stable identity of a directory, survives renames. Allocated by core/uid_map.h.
using DirUid = uint64_t;
inline constexpr DirUid kInvalidDirUid = 0;

enum class QueryKind : uint8_t {
  kAll = 0,     // matches everything in scope
  kTerm = 1,    // word match
  kPrefix = 2,  // word prefix match ("fing*")
  kAnd = 3,
  kOr = 4,
  kNot = 5,
  kDirRef = 6,  // link set of another directory
  kApprox = 7,  // word match within edit distance ("fingerprnt~1")
};

struct QueryExpr;
using QueryExprPtr = std::unique_ptr<QueryExpr>;

struct QueryExpr {
  QueryKind kind = QueryKind::kAll;

  // kTerm/kPrefix/kApprox: lowercase token. kDirRef (unbound): the user-written path.
  std::string text;

  // kDirRef once bound.
  DirUid dir_uid = kInvalidDirUid;

  // kApprox: maximum edit distance (1..3).
  uint8_t approx_distance = 0;

  // kAnd/kOr: exactly two; kNot: exactly one.
  std::vector<QueryExprPtr> children;

  static QueryExprPtr All();
  static QueryExprPtr Term(std::string token);
  static QueryExprPtr Prefix(std::string token);
  static QueryExprPtr Approx(std::string token, uint8_t max_distance);
  static QueryExprPtr DirRef(std::string path);
  static QueryExprPtr BoundDirRef(DirUid uid);
  static QueryExprPtr And(QueryExprPtr lhs, QueryExprPtr rhs);
  static QueryExprPtr Or(QueryExprPtr lhs, QueryExprPtr rhs);
  static QueryExprPtr Not(QueryExprPtr operand);

  QueryExprPtr Clone() const;

  // All DirRef nodes (mutable, for binding paths -> uids).
  void CollectDirRefs(std::vector<QueryExpr*>& out);
  // UIDs of all bound DirRef nodes.
  std::vector<DirUid> ReferencedDirs() const;
  // All kTerm/kPrefix tokens.
  std::vector<std::string> CollectTerms() const;

  // Renders the query. `uid_to_path` may be null when no DirRefs are bound.
  std::string ToString(const std::function<std::string(DirUid)>* uid_to_path = nullptr) const;

  bool StructurallyEquals(const QueryExpr& other) const;
};

// Parses the query language. On syntax errors returns kParseError with position info.
Result<QueryExprPtr> ParseQuery(std::string_view input);

}  // namespace hac

#endif  // HAC_INDEX_QUERY_H_
