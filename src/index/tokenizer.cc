#include "src/index/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace hac {
namespace {

const char* const kDefaultStopwords[] = {
    "a",   "an",  "and", "are", "as",   "at",   "be",   "by",   "for", "from", "has",
    "he",  "in",  "is",  "it",  "its",  "of",   "on",   "that", "the", "to",   "was",
    "we",  "were", "will", "with", "this", "but", "they", "have", "had", "what",
    "when", "who", "which", "you", "your", "can", "not", "all", "if", "or",
};

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  if (options_.use_default_stopwords) {
    for (const char* w : kDefaultStopwords) {
      stopwords_.insert(w);
    }
  }
}

void Tokenizer::Tokenize(std::string_view text, std::vector<std::string>& out) const {
  size_t i = 0;
  std::string token;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) {
      ++i;
    }
    size_t len = i - start;
    if (len < options_.min_token_length) {
      continue;
    }
    len = std::min(len, options_.max_token_length);
    token.assign(text.substr(start, len));
    for (char& c : token) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (IsStopword(token)) {
      continue;
    }
    out.push_back(token);
  }
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  Tokenize(text, out);
  return out;
}

std::vector<std::string> Tokenizer::UniqueTokens(std::string_view text) const {
  std::vector<std::string> out = Tokenize(text);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Tokenizer::IsStopword(std::string_view token) const {
  return stopwords_.count(std::string(token)) != 0;
}

}  // namespace hac
