// PostingCursor: lazy, sorted iteration over the DocIds matching a query.
//
// The eager path (InvertedIndex::Evaluate) materializes the full result bitmap —
// the right shape for scope-consistency propagation, where the whole set is diffed
// against the previous snapshot anyway. Paged reads want the opposite: produce the
// *next* few matches on demand and stop. A cursor tree mirrors the query AST —
// term / AND / OR / NOT nodes — and every node exposes one operation, `SeekGE`:
// position at the first match >= target. Term leaves gallop (exponential search,
// the same skew cutover as PostingList::IntersectSorted), AND nodes leapfrog their
// children to the running maximum, OR nodes take the minimum, NOT nodes subtract
// their operand from a scope cursor. Pulling a page of K matches from a selective
// conjunction therefore costs O(K · log) list probes, not one full evaluation.
//
// Lifetime: term leaves borrow the index's posting arrays, so a cursor is valid
// only until the index is next mutated; the verify wrapper additionally borrows
// the query AST. Callers (HacFileSystem::SearchPage) build, pull one page, and
// discard — nothing index-internal survives across requests.
#ifndef HAC_INDEX_POSTING_CURSOR_H_
#define HAC_INDEX_POSTING_CURSOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/support/bitmap.h"

namespace hac {

class PostingCursor {
 public:
  // Sentinel "no more matches" position. Real DocIds are dense small integers.
  static constexpr uint32_t kCursorEnd = UINT32_MAX;

  virtual ~PostingCursor() = default;

  // Current match, or kCursorEnd once exhausted. Valid after the first SeekGE.
  uint32_t Value() const { return value_; }
  bool AtEnd() const { return value_ == kCursorEnd; }

  // Positions the cursor at the first match >= target and returns it (kCursorEnd
  // when exhausted). Forward-only: a target at or below Value() returns Value().
  virtual uint32_t SeekGE(uint32_t target) = 0;

  // Advances past the current match.
  uint32_t Next() { return AtEnd() ? kCursorEnd : SeekGE(value_ + 1); }

 protected:
  uint32_t value_ = 0;
  // Set once the cursor has been positioned by a SeekGE. Composite cursors use
  // it to honor the forward-only contract at entry: a primed cursor answering
  // `target <= value_` with `value_` is what keeps the target sequences seen by
  // its children monotone — re-running the children from a lower target would
  // ask forward-only leaves about ids they have already passed.
  bool primed_ = false;
};

using PostingCursorPtr = std::unique_ptr<PostingCursor>;

// Leaf over a borrowed sorted unique id array (a term's posting list). SeekGE
// gallops forward from the current position: exponential probe then binary search
// inside the overshoot window, so adjacent pulls are O(1) and far seeks are
// O(log distance) — the IntersectSorted skew behavior, restated as an iterator.
class SpanCursor final : public PostingCursor {
 public:
  SpanCursor(const uint32_t* data, size_t size) : data_(data), size_(size) {}
  explicit SpanCursor(const std::vector<uint32_t>& docs)
      : SpanCursor(docs.data(), docs.size()) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  const uint32_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Leaf that owns its id array (materialized prefix/approx unions, scope snapshots).
class VectorCursor final : public PostingCursor {
 public:
  explicit VectorCursor(std::vector<uint32_t> docs)
      : docs_(std::move(docs)), span_(docs_) {}

  uint32_t SeekGE(uint32_t target) override { return value_ = span_.SeekGE(target); }

 private:
  std::vector<uint32_t> docs_;
  SpanCursor span_;
};

// Leaf over an owned bitmap (scopes, dir() resolutions): SeekGE scans words from
// target/64, so it never touches the bitmap below the frontier.
class BitmapCursor final : public PostingCursor {
 public:
  explicit BitmapCursor(Bitmap bm) : bm_(std::move(bm)) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  Bitmap bm_;
};

// Intersection: leapfrogs every child to the running maximum until they agree.
class AndCursor final : public PostingCursor {
 public:
  explicit AndCursor(std::vector<PostingCursorPtr> children)
      : children_(std::move(children)) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  std::vector<PostingCursorPtr> children_;
};

// Union: every child seeks to the target; the minimum child value wins.
class OrCursor final : public PostingCursor {
 public:
  explicit OrCursor(std::vector<PostingCursorPtr> children)
      : children_(std::move(children)) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  std::vector<PostingCursorPtr> children_;
};

// Difference: matches of `base` that `minus` does not contain (NOT is interpreted
// relative to the enclosing scope, so `base` is a scope cursor).
class DiffCursor final : public PostingCursor {
 public:
  DiffCursor(PostingCursorPtr base, PostingCursorPtr minus)
      : base_(std::move(base)), minus_(std::move(minus)) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  PostingCursorPtr base_;
  PostingCursorPtr minus_;
};

// Filter: keeps only matches the predicate accepts (the two-level content
// verification pass of InvertedIndex::SetContentVerifier, applied lazily).
class FilterCursor final : public PostingCursor {
 public:
  FilterCursor(PostingCursorPtr inner, std::function<bool(uint32_t)> keep)
      : inner_(std::move(inner)), keep_(std::move(keep)) {}

  uint32_t SeekGE(uint32_t target) override;

 private:
  PostingCursorPtr inner_;
  std::function<bool(uint32_t)> keep_;
};

}  // namespace hac

#endif  // HAC_INDEX_POSTING_CURSOR_H_
