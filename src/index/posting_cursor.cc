#include "src/index/posting_cursor.h"

namespace hac {

uint32_t SpanCursor::SeekGE(uint32_t target) {
  if (pos_ >= size_) {
    return value_ = kCursorEnd;
  }
  if (data_[pos_] >= target) {
    return value_ = data_[pos_];
  }
  // Gallop: double the step until the probe lands at or past the target, then
  // binary-search the overshoot window. data_[pos_] < target here, so the answer
  // (if any) lies in (pos_, pos_ + step].
  size_t lo = pos_;
  size_t step = 1;
  while (lo + step < size_ && data_[lo + step] < target) {
    lo += step;
    step *= 2;
  }
  const size_t hi = std::min(size_, lo + step + 1);
  pos_ = static_cast<size_t>(
      std::lower_bound(data_ + lo + 1, data_ + hi, target) - data_);
  return value_ = pos_ < size_ ? data_[pos_] : kCursorEnd;
}

uint32_t BitmapCursor::SeekGE(uint32_t target) {
  const std::vector<uint64_t>& words = bm_.words();
  size_t w = target / 64;
  if (w >= words.size()) {
    return value_ = kCursorEnd;
  }
  uint64_t word = words[w] & (~uint64_t{0} << (target % 64));
  while (word == 0) {
    if (++w >= words.size()) {
      return value_ = kCursorEnd;
    }
    word = words[w];
  }
  return value_ = static_cast<uint32_t>(w * 64 +
                                        static_cast<size_t>(__builtin_ctzll(word)));
}

uint32_t AndCursor::SeekGE(uint32_t target) {
  if (primed_ && target <= value_) {
    return value_;
  }
  primed_ = true;
  uint32_t cur = target;
  size_t agreed = 0;
  size_t i = 0;
  // Leapfrog: cycle over the children; any child landing past `cur` raises the
  // bar and resets the agreement count. All children agreeing means a match.
  while (agreed < children_.size()) {
    const uint32_t v = children_[i]->SeekGE(cur);
    if (v == kCursorEnd) {
      return value_ = kCursorEnd;
    }
    if (v > cur) {
      cur = v;
      agreed = 1;
    } else {
      ++agreed;
    }
    i = (i + 1) % children_.size();
  }
  return value_ = cur;
}

uint32_t OrCursor::SeekGE(uint32_t target) {
  if (primed_ && target <= value_) {
    return value_;
  }
  primed_ = true;
  uint32_t best = kCursorEnd;
  for (const PostingCursorPtr& child : children_) {
    best = std::min(best, child->SeekGE(target));
  }
  return value_ = best;
}

uint32_t DiffCursor::SeekGE(uint32_t target) {
  if (primed_ && target <= value_) {
    return value_;
  }
  primed_ = true;
  uint32_t v = base_->SeekGE(target);
  while (v != kCursorEnd && minus_->SeekGE(v) == v) {
    v = base_->SeekGE(v + 1);
  }
  return value_ = v;
}

uint32_t FilterCursor::SeekGE(uint32_t target) {
  if (primed_ && target <= value_) {
    return value_;
  }
  primed_ = true;
  uint32_t v = inner_->SeekGE(target);
  while (v != kCursorEnd && !keep_(v)) {
    v = inner_->SeekGE(v + 1);
  }
  return value_ = v;
}

}  // namespace hac
