#include "src/index/query.h"

#include <cctype>

#include "src/support/string_util.h"

namespace hac {

QueryExprPtr QueryExpr::All() {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kAll;
  return e;
}

QueryExprPtr QueryExpr::Term(std::string token) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kTerm;
  e->text = ToLowerAscii(token);
  return e;
}

QueryExprPtr QueryExpr::Prefix(std::string token) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kPrefix;
  e->text = ToLowerAscii(token);
  return e;
}

QueryExprPtr QueryExpr::Approx(std::string token, uint8_t max_distance) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kApprox;
  e->text = ToLowerAscii(token);
  e->approx_distance = max_distance;
  return e;
}

QueryExprPtr QueryExpr::DirRef(std::string path) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kDirRef;
  e->text = std::move(path);
  return e;
}

QueryExprPtr QueryExpr::BoundDirRef(DirUid uid) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kDirRef;
  e->dir_uid = uid;
  return e;
}

QueryExprPtr QueryExpr::And(QueryExprPtr lhs, QueryExprPtr rhs) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kAnd;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

QueryExprPtr QueryExpr::Or(QueryExprPtr lhs, QueryExprPtr rhs) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kOr;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

QueryExprPtr QueryExpr::Not(QueryExprPtr operand) {
  auto e = std::make_unique<QueryExpr>();
  e->kind = QueryKind::kNot;
  e->children.push_back(std::move(operand));
  return e;
}

QueryExprPtr QueryExpr::Clone() const {
  auto e = std::make_unique<QueryExpr>();
  e->kind = kind;
  e->text = text;
  e->dir_uid = dir_uid;
  e->approx_distance = approx_distance;
  e->children.reserve(children.size());
  for (const auto& c : children) {
    e->children.push_back(c->Clone());
  }
  return e;
}

void QueryExpr::CollectDirRefs(std::vector<QueryExpr*>& out) {
  if (kind == QueryKind::kDirRef) {
    out.push_back(this);
  }
  for (auto& c : children) {
    c->CollectDirRefs(out);
  }
}

std::vector<DirUid> QueryExpr::ReferencedDirs() const {
  std::vector<DirUid> out;
  std::vector<const QueryExpr*> stack = {this};
  while (!stack.empty()) {
    const QueryExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == QueryKind::kDirRef && e->dir_uid != kInvalidDirUid) {
      out.push_back(e->dir_uid);
    }
    for (const auto& c : e->children) {
      stack.push_back(c.get());
    }
  }
  return out;
}

std::vector<std::string> QueryExpr::CollectTerms() const {
  std::vector<std::string> out;
  std::vector<const QueryExpr*> stack = {this};
  while (!stack.empty()) {
    const QueryExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == QueryKind::kTerm || e->kind == QueryKind::kPrefix ||
        e->kind == QueryKind::kApprox) {
      out.push_back(e->text);
    }
    for (const auto& c : e->children) {
      stack.push_back(c.get());
    }
  }
  return out;
}

std::string QueryExpr::ToString(const std::function<std::string(DirUid)>* uid_to_path) const {
  switch (kind) {
    case QueryKind::kAll:
      return "ALL";
    case QueryKind::kTerm:
      return text;
    case QueryKind::kPrefix:
      return text + "*";
    case QueryKind::kApprox:
      return text + "~" + std::to_string(approx_distance);
    case QueryKind::kDirRef:
      if (dir_uid != kInvalidDirUid && uid_to_path != nullptr) {
        return "dir(" + (*uid_to_path)(dir_uid) + ")";
      }
      if (dir_uid != kInvalidDirUid) {
        return "dir(#" + std::to_string(dir_uid) + ")";
      }
      return "dir(" + text + ")";
    case QueryKind::kAnd:
      return "(" + children[0]->ToString(uid_to_path) + " AND " +
             children[1]->ToString(uid_to_path) + ")";
    case QueryKind::kOr:
      return "(" + children[0]->ToString(uid_to_path) + " OR " +
             children[1]->ToString(uid_to_path) + ")";
    case QueryKind::kNot:
      return "(NOT " + children[0]->ToString(uid_to_path) + ")";
  }
  return "?";
}

bool QueryExpr::StructurallyEquals(const QueryExpr& other) const {
  if (kind != other.kind || text != other.text || dir_uid != other.dir_uid ||
      approx_distance != other.approx_distance ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->StructurallyEquals(*other.children[i])) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

enum class TokKind { kWord, kLParen, kRParen, kAnd, kOr, kNot, kAll, kDir, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // kWord: the word (may end with '*'); kDir: the path
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) {
        out.push_back({TokKind::kEnd, "", pos_});
        return out;
      }
      char c = input_[pos_];
      if (c == '(') {
        out.push_back({TokKind::kLParen, "(", pos_++});
        continue;
      }
      if (c == ')') {
        out.push_back({TokKind::kRParen, ")", pos_++});
        continue;
      }
      if (c == '&') {
        out.push_back({TokKind::kAnd, "&", pos_++});
        continue;
      }
      if (c == '|') {
        out.push_back({TokKind::kOr, "|", pos_++});
        continue;
      }
      if (c == '!') {
        out.push_back({TokKind::kNot, "!", pos_++});
        continue;
      }
      if (IsWordChar(c)) {
        size_t start = pos_;
        while (pos_ < input_.size() && IsWordChar(input_[pos_])) {
          ++pos_;
        }
        bool star = pos_ < input_.size() && input_[pos_] == '*';
        if (star) {
          ++pos_;
        } else if (pos_ + 1 < input_.size() && input_[pos_] == '~' &&
                   input_[pos_ + 1] >= '0' && input_[pos_ + 1] <= '9') {
          pos_ += 2;  // approximate-match suffix "~K", validated by the parser
        }
        std::string word(input_.substr(start, pos_ - start));
        std::string lower = ToLowerAscii(star ? word.substr(0, word.size() - 1) : word);
        if (!star && lower == "and") {
          out.push_back({TokKind::kAnd, lower, start});
        } else if (!star && lower == "or") {
          out.push_back({TokKind::kOr, lower, start});
        } else if (!star && lower == "not") {
          out.push_back({TokKind::kNot, lower, start});
        } else if (!star && lower == "all") {
          out.push_back({TokKind::kAll, lower, start});
        } else if (!star && lower == "dir" && pos_ < input_.size() && input_[pos_] == '(') {
          HAC_ASSIGN_OR_RETURN(Token dir_tok, LexDirRef(start));
          out.push_back(std::move(dir_tok));
        } else {
          out.push_back({TokKind::kWord, std::move(word), start});
        }
        continue;
      }
      return Error(ErrorCode::kParseError,
                   "unexpected character '" + std::string(1, c) + "' at position " +
                       std::to_string(pos_));
    }
  }

 private:
  Result<Token> LexDirRef(size_t start) {
    ++pos_;  // consume '('
    size_t path_start = pos_;
    int depth = 1;
    while (pos_ < input_.size() && depth > 0) {
      if (input_[pos_] == '(') {
        ++depth;
      } else if (input_[pos_] == ')') {
        --depth;
      }
      if (depth > 0) {
        ++pos_;
      }
    }
    if (pos_ >= input_.size()) {
      return Error(ErrorCode::kParseError, "unterminated dir( at position " +
                                               std::to_string(start));
    }
    std::string path(TrimWhitespace(input_.substr(path_start, pos_ - path_start)));
    ++pos_;  // consume ')'
    if (path.empty()) {
      return Error(ErrorCode::kParseError, "empty dir() reference");
    }
    return Token{TokKind::kDir, std::move(path), start};
  }

  void SkipSpace() {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  // Matches the tokenizer's token alphabet so a query word always denotes a single
  // indexed token ("report.txt" lexes as two adjacent words => implicit AND).
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryExprPtr> Run() {
    HAC_ASSIGN_OR_RETURN(QueryExprPtr e, ParseOr());
    if (Cur().kind != TokKind::kEnd) {
      return Unexpected("end of query");
    }
    return e;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Error Unexpected(const std::string& wanted) const {
    return Error(ErrorCode::kParseError, "expected " + wanted + " at position " +
                                             std::to_string(Cur().pos));
  }

  Result<QueryExprPtr> ParseOr() {
    HAC_ASSIGN_OR_RETURN(QueryExprPtr lhs, ParseAnd());
    while (Cur().kind == TokKind::kOr) {
      Advance();
      HAC_ASSIGN_OR_RETURN(QueryExprPtr rhs, ParseAnd());
      lhs = QueryExpr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<QueryExprPtr> ParseAnd() {
    HAC_ASSIGN_OR_RETURN(QueryExprPtr lhs, ParseUnary());
    for (;;) {
      if (Cur().kind == TokKind::kAnd) {
        Advance();
      } else if (Cur().kind != TokKind::kWord && Cur().kind != TokKind::kNot &&
                 Cur().kind != TokKind::kLParen && Cur().kind != TokKind::kAll &&
                 Cur().kind != TokKind::kDir) {
        break;  // no implicit-AND continuation
      }
      HAC_ASSIGN_OR_RETURN(QueryExprPtr rhs, ParseUnary());
      lhs = QueryExpr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<QueryExprPtr> ParseUnary() {
    if (Cur().kind == TokKind::kNot) {
      Advance();
      HAC_ASSIGN_OR_RETURN(QueryExprPtr operand, ParseUnary());
      return QueryExpr::Not(std::move(operand));
    }
    return ParsePrimary();
  }

  Result<QueryExprPtr> ParsePrimary() {
    switch (Cur().kind) {
      case TokKind::kLParen: {
        Advance();
        HAC_ASSIGN_OR_RETURN(QueryExprPtr e, ParseOr());
        if (Cur().kind != TokKind::kRParen) {
          return Unexpected("')'");
        }
        Advance();
        return e;
      }
      case TokKind::kAll: {
        Advance();
        return QueryExpr::All();
      }
      case TokKind::kDir: {
        std::string path = Cur().text;
        Advance();
        return QueryExpr::DirRef(std::move(path));
      }
      case TokKind::kWord: {
        std::string word = Cur().text;
        size_t pos = Cur().pos;
        Advance();
        if (!word.empty() && word.back() == '*') {
          word.pop_back();
          if (word.empty()) {
            return Error(ErrorCode::kParseError, "bare '*' is not a valid query");
          }
          return QueryExpr::Prefix(std::move(word));
        }
        if (word.size() >= 2 && word[word.size() - 2] == '~') {
          int dist = word.back() - '0';
          word.resize(word.size() - 2);
          if (word.empty()) {
            return Error(ErrorCode::kParseError, "bare '~K' is not a valid query");
          }
          if (dist < 1 || dist > 3) {
            return Error(ErrorCode::kParseError,
                         "approximate distance must be 1..3 at position " +
                             std::to_string(pos));
          }
          return QueryExpr::Approx(std::move(word), static_cast<uint8_t>(dist));
        }
        return QueryExpr::Term(std::move(word));
      }
      default:
        return Unexpected("a term, '(', NOT, ALL or dir(...)");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryExprPtr> ParseQuery(std::string_view input) {
  if (TrimWhitespace(input).empty()) {
    return Error(ErrorCode::kParseError, "empty query");
  }
  Lexer lexer(input);
  HAC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace hac
