// Word tokenizer for the content index. ASCII-lowercase alphanumeric runs; digits are
// kept (file contents include identifiers and dates). Very short tokens and an optional
// stopword list are dropped — both knobs mirror what word-level indexers like Glimpse do
// to keep the dictionary small.
#ifndef HAC_INDEX_TOKENIZER_H_
#define HAC_INDEX_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace hac {

struct TokenizerOptions {
  size_t min_token_length = 2;
  size_t max_token_length = 64;  // longer runs are truncated, not dropped
  bool use_default_stopwords = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Appends the tokens of `text` to `out` (duplicates preserved, document order).
  void Tokenize(std::string_view text, std::vector<std::string>& out) const;

  std::vector<std::string> Tokenize(std::string_view text) const;

  // Unique tokens, sorted.
  std::vector<std::string> UniqueTokens(std::string_view text) const;

  bool IsStopword(std::string_view token) const;

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace hac

#endif  // HAC_INDEX_TOKENIZER_H_
