// Word-granularity inverted index: the default CbaMechanism (the repository's Glimpse
// stand-in).
//
// Terms are interned; the dictionary is an ordered map so prefix queries can range-scan.
// Each document remembers its term ids so removal / incremental re-indexing is exact.
#ifndef HAC_INDEX_INVERTED_INDEX_H_
#define HAC_INDEX_INVERTED_INDEX_H_

#include <atomic>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/cba.h"
#include "src/index/posting_cursor.h"
#include "src/index/posting_list.h"
#include "src/index/tokenizer.h"

namespace hac {

class InvertedIndex final : public CbaMechanism {
 public:
  explicit InvertedIndex(TokenizerOptions tokenizer_options = {});

  // CbaMechanism:
  Result<void> IndexDocument(DocId doc, std::string_view text) override;
  Result<void> RemoveDocument(DocId doc) override;
  Result<Bitmap> Evaluate(const QueryExpr& query, const Bitmap& scope,
                          const DirResolver* resolve_dir) override;
  bool MatchesText(const QueryExpr& query, std::string_view text) const override;
  CbaStats Stats() const override;
  size_t IndexSizeBytes() const override;

  // Lazy counterpart of Evaluate(): a cursor tree over the docs matching `query`
  // within `scope`, already positioned at the first match. Result-set equivalence
  // with Evaluate is pinned by tests and the bench_streaming ablation; the eager
  // bitmap path stays the engine's propagation representation. The cursor borrows
  // the index's posting arrays — and `query` itself when a content verifier is
  // installed — so it is valid only until the index is mutated; callers pull one
  // page and discard it.
  Result<PostingCursorPtr> OpenCursor(const QueryExpr& query, const Bitmap& scope,
                                      const DirResolver* resolve_dir) const;

  // --- extra introspection used by benches and workload selection ---

  // Documents containing `term` (exact token), unrestricted by scope.
  Bitmap TermDocs(const std::string& term) const;

  // Number of documents containing `term`.
  size_t TermFrequency(const std::string& term) const;

  // All dictionary terms with document frequency in [min_df, max_df], sorted by term.
  std::vector<std::string> TermsWithFrequencyBetween(size_t min_df, size_t max_df) const;

  bool ContainsDocument(DocId doc) const { return doc_terms_.count(doc) != 0; }

  const Tokenizer& tokenizer() const { return tokenizer_; }

  // Glimpse-fidelity knob: Glimpse is a two-level system — a coarse index narrows the
  // candidate set, then the candidate FILES are searched (agrep). When a fetcher is
  // installed, every top-level Evaluate() re-checks each candidate against its current
  // content and drops non-matching ones, paying the same match-proportional cost.
  // Unfetchable documents are kept (deletion is settled by reindexing, not here).
  using ContentFetcher = std::function<Result<std::string>(DocId)>;
  void SetContentVerifier(ContentFetcher fetch) { fetch_content_ = std::move(fetch); }

  // Index persistence (Glimpse keeps its index on disk; so do we). The snapshot holds
  // the dictionary, delta-compressed postings, and the per-document term lists needed
  // for incremental maintenance. The tokenizer configuration is NOT part of the image;
  // load into an index constructed with the same options.
  std::vector<uint8_t> SaveSnapshot() const;
  Result<void> LoadSnapshot(const std::vector<uint8_t>& image);

 private:
  using TermId = uint32_t;

  TermId InternTerm(const std::string& term);

  // Posting list for a term (case-folded), or nullptr when the term is unknown.
  const PostingList* FindPostings(const std::string& term) const;

  Result<Bitmap> EvaluateNode(const QueryExpr& node, const Bitmap& scope,
                              const DirResolver* resolve_dir) const;

  Result<PostingCursorPtr> BuildCursor(const QueryExpr& node, const Bitmap& scope,
                                       const DirResolver* resolve_dir) const;

  Tokenizer tokenizer_;
  std::map<std::string, TermId> dictionary_;     // term -> id (ordered: prefix scans)
  std::vector<PostingList> postings_;            // indexed by TermId
  std::vector<const std::string*> term_names_;   // TermId -> dictionary key
  std::unordered_map<DocId, std::vector<TermId>> doc_terms_;
  ContentFetcher fetch_content_;
  // Atomic: concurrent service readers evaluate queries under a shared lock.
  mutable std::atomic<uint64_t> queries_evaluated_ = 0;
};

}  // namespace hac

#endif  // HAC_INDEX_INVERTED_INDEX_H_
