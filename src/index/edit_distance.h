// Bounded Levenshtein distance for approximate term matching (the agrep capability
// behind Glimpse: "glimpse -1 fingerprnt" finds fingerprint).
#ifndef HAC_INDEX_EDIT_DISTANCE_H_
#define HAC_INDEX_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace hac {

// True iff the Levenshtein distance between a and b is <= max_dist.
// Banded dynamic program: O(max_dist * min(|a|,|b|)) time, O(|b|) space.
bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_dist);

}  // namespace hac

#endif  // HAC_INDEX_EDIT_DISTANCE_H_
