#include "src/index/query_optimizer.h"

#include <algorithm>
#include <limits>

namespace hac {
namespace {

constexpr uint64_t kUnknownCardinality = std::numeric_limits<uint64_t>::max();

// Upper-bound estimate of the result size; kUnknownCardinality when no bound is known.
uint64_t EstimateCardinality(const QueryExpr& node, const InvertedIndex* index) {
  if (index == nullptr) {
    return kUnknownCardinality;
  }
  switch (node.kind) {
    case QueryKind::kTerm:
      return index->TermFrequency(node.text);
    case QueryKind::kAnd: {
      uint64_t lhs = EstimateCardinality(*node.children[0], index);
      uint64_t rhs = EstimateCardinality(*node.children[1], index);
      return std::min(lhs, rhs);
    }
    case QueryKind::kOr: {
      uint64_t lhs = EstimateCardinality(*node.children[0], index);
      uint64_t rhs = EstimateCardinality(*node.children[1], index);
      if (lhs == kUnknownCardinality || rhs == kUnknownCardinality) {
        return kUnknownCardinality;
      }
      return lhs + rhs;
    }
    case QueryKind::kAll:
    case QueryKind::kNot:
    case QueryKind::kPrefix:
    case QueryKind::kApprox:
    case QueryKind::kDirRef:
      return kUnknownCardinality;
  }
  return kUnknownCardinality;
}

QueryExprPtr Rewrite(QueryExprPtr node, const InvertedIndex* index,
                     OptimizerStats& stats) {
  // Bottom-up: children first.
  for (QueryExprPtr& child : node->children) {
    child = Rewrite(std::move(child), index, stats);
  }

  switch (node->kind) {
    case QueryKind::kNot: {
      // NOT NOT x -> x
      if (node->children[0]->kind == QueryKind::kNot) {
        ++stats.double_negations;
        return std::move(node->children[0]->children[0]);
      }
      return node;
    }
    case QueryKind::kAnd: {
      QueryExpr& lhs = *node->children[0];
      QueryExpr& rhs = *node->children[1];
      if (lhs.kind == QueryKind::kAll) {
        ++stats.all_identities;
        return std::move(node->children[1]);
      }
      if (rhs.kind == QueryKind::kAll) {
        ++stats.all_identities;
        return std::move(node->children[0]);
      }
      if (lhs.StructurallyEquals(rhs)) {
        ++stats.idempotent_merges;
        return std::move(node->children[0]);
      }
      // x AND (x OR y) -> x   (and the mirrored forms)
      auto absorbed_by = [](const QueryExpr& a, const QueryExpr& b) {
        return b.kind == QueryKind::kOr && (b.children[0]->StructurallyEquals(a) ||
                                            b.children[1]->StructurallyEquals(a));
      };
      if (absorbed_by(lhs, rhs)) {
        ++stats.absorptions;
        return std::move(node->children[0]);
      }
      if (absorbed_by(rhs, lhs)) {
        ++stats.absorptions;
        return std::move(node->children[1]);
      }
      // Cheaper side first (short-circuit on empty intermediate results).
      uint64_t lhs_cost = EstimateCardinality(lhs, index);
      uint64_t rhs_cost = EstimateCardinality(rhs, index);
      if (rhs_cost < lhs_cost) {
        std::swap(node->children[0], node->children[1]);
        ++stats.reorderings;
      }
      return node;
    }
    case QueryKind::kOr: {
      QueryExpr& lhs = *node->children[0];
      QueryExpr& rhs = *node->children[1];
      if (lhs.kind == QueryKind::kAll || rhs.kind == QueryKind::kAll) {
        ++stats.all_identities;
        return QueryExpr::All();
      }
      if (lhs.StructurallyEquals(rhs)) {
        ++stats.idempotent_merges;
        return std::move(node->children[0]);
      }
      // x OR (x AND y) -> x   (and the mirrored forms)
      auto absorbed_by = [](const QueryExpr& a, const QueryExpr& b) {
        return b.kind == QueryKind::kAnd && (b.children[0]->StructurallyEquals(a) ||
                                             b.children[1]->StructurallyEquals(a));
      };
      if (absorbed_by(lhs, rhs)) {
        ++stats.absorptions;
        return std::move(node->children[0]);
      }
      if (absorbed_by(rhs, lhs)) {
        ++stats.absorptions;
        return std::move(node->children[1]);
      }
      return node;
    }
    default:
      return node;
  }
}

}  // namespace

QueryExprPtr OptimizeQuery(QueryExprPtr query, const InvertedIndex* index,
                           OptimizerStats* stats) {
  OptimizerStats local;
  OptimizerStats& s = stats != nullptr ? *stats : local;
  // Iterate to a fixed point: a rewrite can expose another (e.g. absorption after a
  // double-negation elimination). Bounded: every rule shrinks or reorders once.
  for (int round = 0; round < 8; ++round) {
    uint64_t before = s.total();
    query = Rewrite(std::move(query), index, s);
    if (s.total() == before) {
      break;
    }
  }
  return query;
}

}  // namespace hac
