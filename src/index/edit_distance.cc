#include "src/index/edit_distance.h"

#include <algorithm>
#include <vector>

namespace hac {

bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_dist) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  if (b.size() - a.size() > max_dist) {
    return false;
  }
  if (max_dist == 0) {
    return a == b;
  }
  // Classic row-by-row DP over the shorter string's prefix distances, with a band
  // cutoff: if every entry of a row exceeds max_dist the answer is "no".
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t j = 0; j <= a.size(); ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= b.size(); ++i) {
    cur[0] = i;
    size_t row_min = cur[0];
    for (size_t j = 1; j <= a.size(); ++j) {
      size_t sub = prev[j - 1] + (a[j - 1] == b[i - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > max_dist) {
      return false;
    }
    std::swap(prev, cur);
  }
  return prev[a.size()] <= max_dist;
}

}  // namespace hac
