// InvertedIndex snapshot persistence: dictionary + delta-varint postings + per-doc
// term lists. Loading replaces the receiving index's contents wholesale.
#include "src/index/inverted_index.h"
#include "src/support/serializer.h"

namespace hac {

namespace {
constexpr uint32_t kIndexMagic = 0x48414349;  // "HACI"
constexpr uint32_t kIndexVersion = 1;
}  // namespace

std::vector<uint8_t> InvertedIndex::SaveSnapshot() const {
  ByteWriter w;
  w.PutU32(kIndexMagic);
  w.PutU32(kIndexVersion);
  // Dictionary + postings, in term order. Term ids are re-assigned densely on load in
  // this same order, so per-doc term lists are saved translated.
  w.PutVarint(dictionary_.size());
  std::vector<TermId> new_id_of(postings_.size());
  TermId next = 0;
  for (const auto& [term, id] : dictionary_) {
    new_id_of[id] = next++;
    w.PutString(term);
    const std::vector<uint32_t>& docs = postings_[id].docs();
    w.PutVarint(docs.size());
    uint32_t prev = 0;
    for (uint32_t doc : docs) {
      w.PutVarint(doc - prev);  // sorted unique => non-negative deltas
      prev = doc;
    }
  }
  w.PutVarint(doc_terms_.size());
  for (const auto& [doc, terms] : doc_terms_) {
    w.PutU32(doc);
    w.PutVarint(terms.size());
    for (TermId id : terms) {
      w.PutVarint(new_id_of[id]);
    }
  }
  return w.TakeBuffer();
}

Result<void> InvertedIndex::LoadSnapshot(const std::vector<uint8_t>& image) {
  ByteReader r(image);
  HAC_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kIndexMagic) {
    return Error(ErrorCode::kCorrupt, "bad index magic");
  }
  HAC_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kIndexVersion) {
    return Error(ErrorCode::kCorrupt, "unsupported index version");
  }
  std::map<std::string, TermId> dictionary;
  std::vector<PostingList> postings;
  std::vector<const std::string*> term_names;
  HAC_ASSIGN_OR_RETURN(uint64_t n_terms, r.GetVarint());
  for (TermId id = 0; id < n_terms; ++id) {
    HAC_ASSIGN_OR_RETURN(std::string term, r.GetString());
    auto [it, inserted] = dictionary.emplace(std::move(term), id);
    if (!inserted) {
      return Error(ErrorCode::kCorrupt, "duplicate dictionary term");
    }
    PostingList list;
    HAC_ASSIGN_OR_RETURN(uint64_t n_docs, r.GetVarint());
    uint32_t doc = 0;
    bool first = true;
    for (uint64_t i = 0; i < n_docs; ++i) {
      HAC_ASSIGN_OR_RETURN(uint64_t delta, r.GetVarint());
      if (!first && delta == 0) {
        return Error(ErrorCode::kCorrupt, "non-increasing posting");
      }
      doc += static_cast<uint32_t>(delta);
      first = false;
      list.Add(doc);
    }
    postings.push_back(std::move(list));
    term_names.push_back(&it->first);
  }
  std::unordered_map<DocId, std::vector<TermId>> doc_terms;
  HAC_ASSIGN_OR_RETURN(uint64_t n_docs, r.GetVarint());
  for (uint64_t i = 0; i < n_docs; ++i) {
    HAC_ASSIGN_OR_RETURN(DocId doc, r.GetU32());
    HAC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
    std::vector<TermId> terms;
    terms.reserve(n);
    for (uint64_t t = 0; t < n; ++t) {
      HAC_ASSIGN_OR_RETURN(uint64_t id, r.GetVarint());
      if (id >= postings.size()) {
        return Error(ErrorCode::kCorrupt, "term id out of range");
      }
      terms.push_back(static_cast<TermId>(id));
    }
    if (!doc_terms.emplace(doc, std::move(terms)).second) {
      return Error(ErrorCode::kCorrupt, "duplicate document");
    }
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kCorrupt, "trailing bytes in index image");
  }
  dictionary_ = std::move(dictionary);
  postings_ = std::move(postings);
  term_names_ = std::move(term_names);
  doc_terms_ = std::move(doc_terms);
  return OkResult();
}

}  // namespace hac
