#include "src/index/posting_list.h"

#include <algorithm>

namespace hac {

void PostingList::Add(uint32_t doc) {
  if (docs_.empty() || doc > docs_.back()) {
    docs_.push_back(doc);
    return;
  }
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it == docs_.end() || *it != doc) {
    docs_.insert(it, doc);
  }
}

void PostingList::Remove(uint32_t doc) {
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it != docs_.end() && *it == doc) {
    docs_.erase(it);
  }
}

bool PostingList::Contains(uint32_t doc) const {
  return std::binary_search(docs_.begin(), docs_.end(), doc);
}

void PostingList::UnionInto(Bitmap& out) const {
  for (uint32_t doc : docs_) {
    out.Set(doc);
  }
}

Bitmap PostingList::ToBitmap() const {
  Bitmap bm;
  if (!docs_.empty()) {
    bm.Reserve(docs_.back() + 1);
  }
  UnionInto(bm);
  return bm;
}

}  // namespace hac
