#include "src/index/posting_list.h"

#include <algorithm>

namespace hac {

void PostingList::Add(uint32_t doc) {
  if (docs_.empty() || doc > docs_.back()) {
    docs_.push_back(doc);
    return;
  }
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it == docs_.end() || *it != doc) {
    docs_.insert(it, doc);
  }
}

void PostingList::Remove(uint32_t doc) {
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it != docs_.end() && *it == doc) {
    docs_.erase(it);
  }
}

bool PostingList::Contains(uint32_t doc) const {
  return std::binary_search(docs_.begin(), docs_.end(), doc);
}

void PostingList::UnionInto(Bitmap& out) const {
  for (uint32_t doc : docs_) {
    out.Set(doc);
  }
}

Bitmap PostingList::ToBitmap() const {
  Bitmap bm;
  if (!docs_.empty()) {
    bm.Reserve(docs_.back() + 1);
  }
  UnionInto(bm);
  return bm;
}

std::vector<uint32_t> PostingList::IntersectSorted(const std::vector<uint32_t>& a,
                                                   const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& small = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& large = a.size() <= b.size() ? b : a;
  std::vector<uint32_t> out;
  if (small.empty()) {
    return out;
  }
  out.reserve(small.size());
  if (small.size() * kGallopSkew <= large.size()) {
    // Galloping: for each id of the small list, double a probe step from the last
    // match position until it overshoots, then binary-search the bracketed window.
    size_t lo = 0;
    for (uint32_t x : small) {
      size_t bound = 1;
      while (lo + bound < large.size() && large[lo + bound] < x) {
        bound <<= 1;
      }
      auto it = std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                                 large.begin() +
                                     static_cast<ptrdiff_t>(
                                         std::min(lo + bound + 1, large.size())),
                                 x);
      lo = static_cast<size_t>(it - large.begin());
      if (lo == large.size()) {
        break;
      }
      if (large[lo] == x) {
        out.push_back(x);
        ++lo;
      }
    }
  } else {
    size_t i = 0, j = 0;
    while (i < small.size() && j < large.size()) {
      if (small[i] < large[j]) {
        ++i;
      } else if (large[j] < small[i]) {
        ++j;
      } else {
        out.push_back(small[i]);
        ++i;
        ++j;
      }
    }
  }
  return out;
}

}  // namespace hac
