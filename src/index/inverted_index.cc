#include "src/index/inverted_index.h"

#include <algorithm>

#include "src/index/edit_distance.h"
#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/trace.h"

namespace hac {

namespace {

struct IndexMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& queries = reg.GetCounter(metric_names::kIndexQueries);
  Counter& docs_indexed = reg.GetCounter(metric_names::kIndexDocsIndexed);
  Counter& docs_removed = reg.GetCounter(metric_names::kIndexDocsRemoved);
  Histogram& query_us = reg.GetHistogram(metric_names::kIndexQueryUs);
  Histogram& selectivity_pct =
      reg.GetHistogram(metric_names::kIndexQuerySelectivityPct, "pct");
};

IndexMetrics& GM() {
  static IndexMetrics* m = new IndexMetrics();
  return *m;
}

// Sparse-scope fast path: when the scope has kSparseScopeFactor× fewer set bits than
// a term's posting list, iterate the scope and probe the list (O(|scope| · log n))
// instead of materializing the full list as a bitmap and ANDing over the doc space.
constexpr size_t kSparseScopeFactor = 8;

// Sorted-id vs Bitmap cutover for term-AND-term: below this combined density
// (set bits per doc-space slot) the id-list intersection beats the word-parallel
// bitmap AND, which always pays O(universe/64) regardless of how sparse the terms are.
constexpr size_t kDenseCutover = 8;  // lists denser than 1/8 use bitmaps

// Prefix/approx nodes expand to one posting list per matching dictionary term.
// Up to this many expand as a lazy OR of span cursors; beyond it the O(fanout)
// per-step minimum scan loses to materializing the union bitmap once.
constexpr size_t kCursorOrFanout = 16;

}  // namespace

InvertedIndex::InvertedIndex(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

InvertedIndex::TermId InvertedIndex::InternTerm(const std::string& term) {
  auto [it, inserted] = dictionary_.emplace(term, static_cast<TermId>(postings_.size()));
  if (inserted) {
    postings_.emplace_back();
    term_names_.push_back(&it->first);
  }
  return it->second;
}

Result<void> InvertedIndex::IndexDocument(DocId doc, std::string_view text) {
  if (doc_terms_.count(doc) != 0) {
    HAC_RETURN_IF_ERROR(RemoveDocument(doc));
  }
  std::vector<std::string> tokens = tokenizer_.UniqueTokens(text);
  std::vector<TermId> term_ids;
  term_ids.reserve(tokens.size());
  for (const std::string& token : tokens) {
    TermId id = InternTerm(token);
    postings_[id].Add(doc);
    term_ids.push_back(id);
  }
  doc_terms_.emplace(doc, std::move(term_ids));
  GM().docs_indexed.Inc();
  return OkResult();
}

Result<void> InvertedIndex::RemoveDocument(DocId doc) {
  auto it = doc_terms_.find(doc);
  if (it == doc_terms_.end()) {
    return Error(ErrorCode::kNotFound, "document " + std::to_string(doc) + " not indexed");
  }
  for (TermId id : it->second) {
    postings_[id].Remove(doc);
  }
  doc_terms_.erase(it);
  GM().docs_removed.Inc();
  return OkResult();
}

Result<Bitmap> InvertedIndex::Evaluate(const QueryExpr& query, const Bitmap& scope,
                                       const DirResolver* resolve_dir) {
  ++queries_evaluated_;
  GM().queries.Inc();
  TraceSpan span(metric_names::kSpanIndexEvaluate);
  const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
  HAC_ASSIGN_OR_RETURN(Bitmap result, EvaluateNode(query, scope, resolve_dir));
  if (fetch_content_) {
    // Two-level verification pass (see SetContentVerifier).
    Bitmap verified = result;
    result.ForEach([&](uint32_t doc) {
      auto body = fetch_content_(doc);
      if (body.ok() && !MatchesText(query, body.value())) {
        verified.Clear(doc);
      }
    });
    result = std::move(verified);
  }
  if (kMetricsCompiledIn) {
    GM().query_us.Record(TraceRing::NowUs() - t0);
    const uint64_t scope_count = scope.Count();
    const uint64_t hits = result.Count();
    if (scope_count > 0) {
      // Scope-filter selectivity: fraction of the candidate scope the query kept.
      GM().selectivity_pct.Record(hits * 100 / scope_count);
    }
    span.Arg("scope", scope_count);
    span.Arg("hits", hits);
  }
  return result;
}

Result<Bitmap> InvertedIndex::EvaluateNode(const QueryExpr& node, const Bitmap& scope,
                                           const DirResolver* resolve_dir) const {
  switch (node.kind) {
    case QueryKind::kAll:
      return scope;
    case QueryKind::kTerm: {
      const PostingList* plist = FindPostings(node.text);
      if (plist == nullptr || plist->Empty()) {
        return Bitmap();
      }
      const size_t scope_count = scope.Count();
      if (scope_count * kSparseScopeFactor < plist->Size()) {
        Bitmap bm;
        scope.ForEach([&](uint32_t doc) {
          if (plist->Contains(doc)) {
            bm.Set(doc);
          }
        });
        return bm;
      }
      Bitmap bm = plist->ToBitmap();
      bm &= scope;
      return bm;
    }
    case QueryKind::kPrefix: {
      Bitmap bm;
      for (auto it = dictionary_.lower_bound(node.text);
           it != dictionary_.end() && StartsWith(it->first, node.text); ++it) {
        postings_[it->second].UnionInto(bm);
      }
      bm &= scope;
      return bm;
    }
    case QueryKind::kApprox: {
      // Dictionary scan with a banded edit-distance check; the length pre-filter
      // inside WithinEditDistance rejects most terms in O(1).
      Bitmap bm;
      for (const auto& [term, id] : dictionary_) {
        if (WithinEditDistance(term, node.text, node.approx_distance)) {
          postings_[id].UnionInto(bm);
        }
      }
      bm &= scope;
      return bm;
    }
    case QueryKind::kDirRef: {
      if (node.dir_uid == kInvalidDirUid) {
        return Error(ErrorCode::kInvalidArgument,
                     "unbound dir() reference: " + node.text);
      }
      if (resolve_dir == nullptr || !*resolve_dir) {
        return Error(ErrorCode::kInvalidArgument, "no dir() resolver supplied");
      }
      HAC_ASSIGN_OR_RETURN(Bitmap bm, (*resolve_dir)(node.dir_uid));
      bm &= scope;
      return bm;
    }
    case QueryKind::kAnd: {
      // Term-AND-term with sparse operands: intersect the sorted posting lists
      // directly (galloping when skewed) and filter by scope per match, instead of
      // materializing both lists as full doc-space bitmaps. Identical result —
      // Eval(a AND b, scope) = A ∩ B ∩ scope either way.
      if (node.children[0]->kind == QueryKind::kTerm &&
          node.children[1]->kind == QueryKind::kTerm) {
        const PostingList* a = FindPostings(node.children[0]->text);
        const PostingList* b = FindPostings(node.children[1]->text);
        if (a == nullptr || b == nullptr || a->Empty() || b->Empty()) {
          return Bitmap();
        }
        const size_t universe =
            static_cast<size_t>(std::max(a->docs().back(), b->docs().back())) + 1;
        if ((a->Size() + b->Size()) * kDenseCutover < universe) {
          Bitmap bm;
          for (uint32_t doc : PostingList::IntersectSorted(a->docs(), b->docs())) {
            if (scope.Test(doc)) {
              bm.Set(doc);
            }
          }
          return bm;
        }
      }
      HAC_ASSIGN_OR_RETURN(Bitmap lhs, EvaluateNode(*node.children[0], scope, resolve_dir));
      if (lhs.Empty()) {
        return lhs;  // short-circuit
      }
      HAC_ASSIGN_OR_RETURN(Bitmap rhs, EvaluateNode(*node.children[1], scope, resolve_dir));
      lhs &= rhs;
      return lhs;
    }
    case QueryKind::kOr: {
      HAC_ASSIGN_OR_RETURN(Bitmap lhs, EvaluateNode(*node.children[0], scope, resolve_dir));
      HAC_ASSIGN_OR_RETURN(Bitmap rhs, EvaluateNode(*node.children[1], scope, resolve_dir));
      lhs |= rhs;
      return lhs;
    }
    case QueryKind::kNot: {
      HAC_ASSIGN_OR_RETURN(Bitmap operand,
                           EvaluateNode(*node.children[0], scope, resolve_dir));
      Bitmap bm = scope;
      bm.AndNot(operand);
      return bm;
    }
  }
  return Error(ErrorCode::kInvalidArgument, "bad query node");
}

Result<PostingCursorPtr> InvertedIndex::OpenCursor(const QueryExpr& query,
                                                   const Bitmap& scope,
                                                   const DirResolver* resolve_dir) const {
  ++queries_evaluated_;
  GM().queries.Inc();
  PostingCursorPtr root;
  if (query.kind == QueryKind::kAll) {
    root = std::make_unique<BitmapCursor>(scope);
  } else {
    // Leaves are built unscoped; one intersection with the scope at the root is
    // set-identical to EvaluateNode's per-node `&= scope` (intersection
    // distributes over AND/OR, and NOT nodes scope-subtract internally).
    HAC_ASSIGN_OR_RETURN(PostingCursorPtr tree, BuildCursor(query, scope, resolve_dir));
    std::vector<PostingCursorPtr> both;
    both.push_back(std::make_unique<BitmapCursor>(scope));
    both.push_back(std::move(tree));
    root = std::make_unique<AndCursor>(std::move(both));
  }
  if (fetch_content_) {
    // Two-level verification (see SetContentVerifier), applied lazily per match.
    // Borrows `query`: the caller keeps the AST alive while pulling.
    root = std::make_unique<FilterCursor>(
        std::move(root), [this, &query](uint32_t doc) {
          auto body = fetch_content_(doc);
          return !body.ok() || MatchesText(query, body.value());
        });
  }
  root->SeekGE(0);
  return root;
}

Result<PostingCursorPtr> InvertedIndex::BuildCursor(const QueryExpr& node,
                                                    const Bitmap& scope,
                                                    const DirResolver* resolve_dir) const {
  switch (node.kind) {
    case QueryKind::kAll:
      return PostingCursorPtr(std::make_unique<BitmapCursor>(scope));
    case QueryKind::kTerm: {
      const PostingList* plist = FindPostings(node.text);
      if (plist == nullptr || plist->Empty()) {
        return PostingCursorPtr(std::make_unique<VectorCursor>(std::vector<uint32_t>{}));
      }
      return PostingCursorPtr(
          std::make_unique<SpanCursor>(plist->docs().data(), plist->Size()));
    }
    case QueryKind::kPrefix:
    case QueryKind::kApprox: {
      std::vector<PostingCursorPtr> lists;
      bool overflow = false;
      Bitmap merged;
      auto add = [&](const PostingList& p) {
        if (p.Empty()) {
          return;
        }
        if (!overflow && lists.size() == kCursorOrFanout) {
          overflow = true;
          for (const PostingCursorPtr& c : lists) {
            // Spill the collected spans into a bitmap; SpanCursor is fresh, so a
            // full SeekGE walk is just the list replay.
            for (uint32_t v = c->SeekGE(0); v != PostingCursor::kCursorEnd;
                 v = c->Next()) {
              merged.Set(v);
            }
          }
          lists.clear();
        }
        if (overflow) {
          p.UnionInto(merged);
        } else {
          lists.push_back(std::make_unique<SpanCursor>(p.docs().data(), p.Size()));
        }
      };
      if (node.kind == QueryKind::kPrefix) {
        for (auto it = dictionary_.lower_bound(node.text);
             it != dictionary_.end() && StartsWith(it->first, node.text); ++it) {
          add(postings_[it->second]);
        }
      } else {
        for (const auto& [term, id] : dictionary_) {
          if (WithinEditDistance(term, node.text, node.approx_distance)) {
            add(postings_[id]);
          }
        }
      }
      if (overflow) {
        return PostingCursorPtr(std::make_unique<BitmapCursor>(std::move(merged)));
      }
      if (lists.empty()) {
        return PostingCursorPtr(std::make_unique<VectorCursor>(std::vector<uint32_t>{}));
      }
      if (lists.size() == 1) {
        return std::move(lists.front());
      }
      return PostingCursorPtr(std::make_unique<OrCursor>(std::move(lists)));
    }
    case QueryKind::kDirRef: {
      if (node.dir_uid == kInvalidDirUid) {
        return Error(ErrorCode::kInvalidArgument,
                     "unbound dir() reference: " + node.text);
      }
      if (resolve_dir == nullptr || !*resolve_dir) {
        return Error(ErrorCode::kInvalidArgument, "no dir() resolver supplied");
      }
      HAC_ASSIGN_OR_RETURN(Bitmap bm, (*resolve_dir)(node.dir_uid));
      return PostingCursorPtr(std::make_unique<BitmapCursor>(std::move(bm)));
    }
    case QueryKind::kAnd:
    case QueryKind::kOr: {
      std::vector<PostingCursorPtr> children;
      for (const QueryExprPtr& child : node.children) {
        HAC_ASSIGN_OR_RETURN(PostingCursorPtr c,
                             BuildCursor(*child, scope, resolve_dir));
        children.push_back(std::move(c));
      }
      if (node.kind == QueryKind::kAnd) {
        return PostingCursorPtr(std::make_unique<AndCursor>(std::move(children)));
      }
      return PostingCursorPtr(std::make_unique<OrCursor>(std::move(children)));
    }
    case QueryKind::kNot: {
      HAC_ASSIGN_OR_RETURN(PostingCursorPtr operand,
                           BuildCursor(*node.children[0], scope, resolve_dir));
      return PostingCursorPtr(std::make_unique<DiffCursor>(
          std::make_unique<BitmapCursor>(scope), std::move(operand)));
    }
  }
  return Error(ErrorCode::kInvalidArgument, "bad query node");
}

bool InvertedIndex::MatchesText(const QueryExpr& query, std::string_view text) const {
  std::vector<std::string> tokens = tokenizer_.UniqueTokens(text);
  auto has_token = [&tokens](const std::string& t) {
    return std::binary_search(tokens.begin(), tokens.end(), t);
  };
  auto has_prefix = [&tokens](const std::string& p) {
    auto it = std::lower_bound(tokens.begin(), tokens.end(), p);
    return it != tokens.end() && StartsWith(*it, p);
  };
  auto has_approx = [&tokens](const std::string& t, size_t dist) {
    for (const std::string& token : tokens) {
      if (WithinEditDistance(token, t, dist)) {
        return true;
      }
    }
    return false;
  };
  std::function<bool(const QueryExpr&)> eval = [&](const QueryExpr& node) -> bool {
    switch (node.kind) {
      case QueryKind::kAll:
        return true;
      case QueryKind::kTerm:
        return has_token(node.text);
      case QueryKind::kPrefix:
        return has_prefix(node.text);
      case QueryKind::kApprox:
        return has_approx(node.text, node.approx_distance);
      case QueryKind::kDirRef:
        return true;  // membership cannot be judged from text alone
      case QueryKind::kAnd:
        return eval(*node.children[0]) && eval(*node.children[1]);
      case QueryKind::kOr:
        return eval(*node.children[0]) || eval(*node.children[1]);
      case QueryKind::kNot:
        return !eval(*node.children[0]);
    }
    return false;
  };
  return eval(query);
}

CbaStats InvertedIndex::Stats() const {
  CbaStats s;
  s.documents = doc_terms_.size();
  s.terms = dictionary_.size();
  for (const PostingList& p : postings_) {
    s.postings += p.Size();
  }
  s.queries_evaluated = queries_evaluated_;
  return s;
}

size_t InvertedIndex::IndexSizeBytes() const {
  size_t total = 0;
  for (const auto& [term, id] : dictionary_) {
    total += term.size() + sizeof(TermId) + 48;  // dictionary node overhead
  }
  for (const PostingList& p : postings_) {
    total += p.SizeBytes();
  }
  for (const auto& [doc, terms] : doc_terms_) {
    total += sizeof(DocId) + terms.capacity() * sizeof(TermId) + 32;
  }
  return total;
}

const PostingList* InvertedIndex::FindPostings(const std::string& term) const {
  auto it = dictionary_.find(ToLowerAscii(term));
  return it == dictionary_.end() ? nullptr : &postings_[it->second];
}

Bitmap InvertedIndex::TermDocs(const std::string& term) const {
  const PostingList* plist = FindPostings(term);
  return plist == nullptr ? Bitmap() : plist->ToBitmap();
}

size_t InvertedIndex::TermFrequency(const std::string& term) const {
  const PostingList* plist = FindPostings(term);
  return plist == nullptr ? 0 : plist->Size();
}

std::vector<std::string> InvertedIndex::TermsWithFrequencyBetween(size_t min_df,
                                                                  size_t max_df) const {
  std::vector<std::string> out;
  for (const auto& [term, id] : dictionary_) {
    size_t df = postings_[id].Size();
    if (df >= min_df && df <= max_df) {
      out.push_back(term);
    }
  }
  return out;
}

}  // namespace hac
