// Query optimizer: semantics-preserving rewrites applied before evaluation.
//
// Rules (all sound under the scope-relative NOT semantics the evaluator implements):
//   * double negation:       NOT NOT x -> x
//   * ALL identities:        x AND ALL -> x,  ALL AND x -> x,  x OR ALL -> ALL
//     (NOT ALL — the empty set — is left in place; it evaluates cheaply anyway)
//   * idempotence:           x AND x -> x,  x OR x -> x        (structural equality)
//   * absorption:            x AND (x OR y) -> x,  x OR (x AND y) -> x
//   * selectivity ordering:  AND children are reordered so the side with the smaller
//     estimated result evaluates first (the evaluator short-circuits empty ANDs).
//
// The estimator asks the index for term document frequencies; OR sums, AND takes the
// minimum, NOT and dir() fall back to "unknown" (kept in place).
#ifndef HAC_INDEX_QUERY_OPTIMIZER_H_
#define HAC_INDEX_QUERY_OPTIMIZER_H_

#include "src/index/inverted_index.h"
#include "src/index/query.h"

namespace hac {

struct OptimizerStats {
  uint64_t double_negations = 0;
  uint64_t all_identities = 0;
  uint64_t idempotent_merges = 0;
  uint64_t absorptions = 0;
  uint64_t reorderings = 0;

  uint64_t total() const {
    return double_negations + all_identities + idempotent_merges + absorptions +
           reorderings;
  }
};

// Rewrites `query` in place (consuming and returning the root). `index` may be null:
// selectivity reordering is skipped, the algebraic rules still apply.
QueryExprPtr OptimizeQuery(QueryExprPtr query, const InvertedIndex* index,
                           OptimizerStats* stats = nullptr);

}  // namespace hac

#endif  // HAC_INDEX_QUERY_OPTIMIZER_H_
