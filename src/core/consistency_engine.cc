// Implementation of both propagation strategies. See consistency_engine.h for the
// model; the delta rule used by the incremental visit is
//
//   raw' = (raw ∖ Δ) ∪ Eval(query, scope' ∩ Δ)
//
// which is exact for any Δ that covers every doc whose membership could have changed:
// the evaluator decides membership pointwise per document, so docs outside Δ with
// unchanged scope membership, index state and dir()-reference status keep their old
// verdict. Δ is assembled per visit from four sources: the scope diff against the
// cached scope, the global doc-change log since this directory's watermark, the
// in-pass contents deltas of its dependencies, and its own origin delta.
#include "src/core/consistency_engine.h"

#include <algorithm>

#include "src/core/hac_file_system.h"
#include "src/index/query_optimizer.h"
#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/vfs/path.h"

namespace hac {

namespace {

// Process-global twins of the per-instance StatsSnapshot counters (which tests and
// ablations still read per HacFileSystem). References are resolved once.
struct EngineMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& query_evaluations = reg.GetCounter(metric_names::kConsistencyQueryEvaluations);
  Counter& delta_evaluations = reg.GetCounter(metric_names::kConsistencyDeltaEvaluations);
  Counter& scope_propagations = reg.GetCounter(metric_names::kConsistencyScopePropagations);
  Counter& short_circuits = reg.GetCounter(metric_names::kConsistencyShortCircuits);
  Counter& batch_flushes = reg.GetCounter(metric_names::kConsistencyBatchFlushes);
  Counter& batched_mutations = reg.GetCounter(metric_names::kConsistencyBatchedMutations);
  Counter& passes = reg.GetCounter(metric_names::kConsistencyPasses);
  Counter& transient_added = reg.GetCounter(metric_names::kLinksTransientAdded);
  Counter& transient_removed = reg.GetCounter(metric_names::kLinksTransientRemoved);
  Histogram& pass_us = reg.GetHistogram(metric_names::kConsistencyPassUs);
  Histogram& parallel_levels =
      reg.GetHistogram(metric_names::kConsistencyParallelLevels, "levels");
  Histogram& parallel_width =
      reg.GetHistogram(metric_names::kConsistencyParallelWidth, "dirs");
  Histogram& parallel_barrier_wait_ns =
      reg.GetHistogram(metric_names::kConsistencyParallelBarrierWaitNs, "ns");
};

EngineMetrics& GM() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Notifications
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::NotifyScopeChanged(DirUid uid, const Bitmap* contents_delta) {
  if (suspended_) {
    return OkResult();  // persistence replay: one global pass runs at the end
  }
  if (mode_ == ConsistencyMode::kEager) {
    if (in_pass_) {
      return OkResult();  // the outer propagation already covers this change
    }
    return SyncFrom(uid);
  }
  if (auto meta = host_->MetaOfUid(uid); meta.ok()) {
    ++meta.value()->scope_epoch;  // dependents' epoch sums now mismatch
  }
  Bitmap& slot = pending_origins_[uid];
  if (contents_delta != nullptr) {
    slot |= *contents_delta;
  }
  if (in_pass_) {
    return OkResult();  // folded into the next flush (remote imports, mid-pass edits)
  }
  if (batch_depth_ > 0) {
    ++host_->stats_.batched_mutations;
    GM().batched_mutations.Inc();
    batch_dirty_ = true;
    return OkResult();
  }
  return Flush();
}

void ConsistencyEngine::NoteDocChanged(DocId doc) {
  if (mode_ == ConsistencyMode::kEager || suspended_ || doc == kInvalidDocId) {
    return;  // eager visits always re-evaluate in full; no log needed
  }
  AppendDocLog(doc);
}

void ConsistencyEngine::InvalidateCache(DirUid uid) {
  if (auto meta = host_->MetaOfUid(uid); meta.ok()) {
    meta.value()->eval.Invalidate();
  }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::SyncFrom(DirUid uid) {
  if (suspended_ || in_pass_) {
    return OkResult();
  }
  if (mode_ == ConsistencyMode::kEager) {
    TraceSpan span(metric_names::kSpanConsistencyPass);
    const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
    in_pass_ = true;
    uint64_t visited = 1;
    Result<void> status = VisitEager(uid);
    ++host_->stats_.scope_propagations;
    GM().scope_propagations.Inc();
    if (status.ok()) {
      for (DirUid dep : host_->graph_.DependentsInTopoOrder(uid)) {
        status = VisitEager(dep);
        ++host_->stats_.scope_propagations;
        GM().scope_propagations.Inc();
        ++visited;
        if (!status.ok()) {
          break;
        }
      }
    }
    in_pass_ = false;
    GM().passes.Inc();
    if (kMetricsCompiledIn) {
      GM().pass_us.Record(TraceRing::NowUs() - t0);
    }
    span.Arg("origins", 1);
    span.Arg("visited", visited);
    return status;
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  origins[uid];  // an explicit sync never short-circuits the target itself
  return RunPass(std::move(origins), /*full=*/false);
}

Result<void> ConsistencyEngine::PropagateAll() {
  if (suspended_ || in_pass_) {
    return OkResult();
  }
  if (mode_ == ConsistencyMode::kEager) {
    TraceSpan span(metric_names::kSpanConsistencyPass);
    const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
    in_pass_ = true;
    uint64_t visited = 0;
    Result<void> status = OkResult();
    for (DirUid uid : host_->graph_.FullTopoOrder()) {
      status = VisitEager(uid);
      ++host_->stats_.scope_propagations;
      GM().scope_propagations.Inc();
      ++visited;
      if (!status.ok()) {
        break;
      }
    }
    in_pass_ = false;
    GM().passes.Inc();
    if (kMetricsCompiledIn) {
      GM().pass_us.Record(TraceRing::NowUs() - t0);
    }
    span.Arg("visited", visited);
    return status;
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  return RunPass(std::move(origins), /*full=*/true);
}

Result<void> ConsistencyEngine::EndBatch() {
  if (batch_depth_ == 0) {
    return Error(ErrorCode::kInvalidArgument, "EndBatch without matching BeginBatch");
  }
  if (--batch_depth_ > 0) {
    return OkResult();  // only the outermost EndBatch flushes
  }
  return Flush();
}

Result<void> ConsistencyEngine::Flush() {
  if (suspended_ || in_pass_ || mode_ == ConsistencyMode::kEager) {
    return OkResult();  // eager never defers anything
  }
  if (pending_origins_.empty()) {
    return OkResult();
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  return RunPass(std::move(origins), /*full=*/false);
}

Result<void> ConsistencyEngine::RunPass(std::map<DirUid, Bitmap> origins, bool full) {
  TraceSpan span(metric_names::kSpanConsistencyPass);
  const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
  const uint64_t evals_before =
      host_->stats_.query_evaluations + host_->stats_.delta_evaluations;
  const uint64_t short_circuits_before = host_->stats_.short_circuit_propagations;
  in_pass_ = true;
  ++gen_;
  // Both serial and parallel passes visit the flattened wavefront schedule, so the
  // VFS mutation order — and with it symlink names and inode numbers — is identical.
  std::vector<std::vector<DirUid>> levels;
  if (full) {
    levels = host_->graph_.FullLevels();
  } else {
    std::vector<DirUid> sources;
    sources.reserve(origins.size());
    for (const auto& [uid, delta] : origins) {
      sources.push_back(uid);
    }
    levels = host_->graph_.AffectedInLevels(sources);
  }
  size_t visited = 0;
  size_t max_width = 0;
  for (const auto& level : levels) {
    visited += level.size();
    max_width = std::max(max_width, level.size());
  }
  // How each directory's contents changed within THIS pass, seeded with the origins'
  // mutation deltas. dir() dependents re-evaluate exactly over these docs.
  std::unordered_map<DirUid, Bitmap> contents_delta;
  for (const auto& [uid, delta] : origins) {
    if (!delta.Empty()) {
      contents_delta[uid] |= delta;
    }
  }
  // Semantic mounts force serial visits: ImportRemoteResults rehashes metadata_ and
  // logs docs mid-pass, which concurrent planners must never observe.
  const bool parallel =
      pool_ != nullptr && parallel_width_ > 1 && host_->mounts_.semantic().empty();
  uint64_t barrier_wait_ns = 0;
  Result<void> status = OkResult();
  for (const auto& level : levels) {
    if (!status.ok()) {
      break;
    }
    if (parallel && level.size() > 1) {
      // Plan the whole level concurrently (read-only), then apply serially in
      // ascending-uid order — the same order the serial engine uses.
      std::vector<VisitPlan> plans(level.size());
      barrier_wait_ns += ParallelFor(
          pool_, parallel_width_ - 1, level.size(), [&, this](size_t i) {
            plans[i] = PlanVisit(level[i], origins, contents_delta,
                                 /*after_import=*/false);
          });
      for (VisitPlan& plan : plans) {
        if (plan.action == VisitPlan::Action::kNeedsImport) {
          // Unreachable while the mount gate above holds (a mount added mid-pass
          // would have to come from a visit, which never mounts); recover serially.
          status = VisitIncremental(plan.uid, origins, &contents_delta);
        } else {
          status = ApplyVisit(&plan, &contents_delta);
        }
        if (!status.ok()) {
          break;
        }
      }
    } else {
      for (DirUid uid : level) {
        status = VisitIncremental(uid, origins, &contents_delta);
        if (!status.ok()) {
          break;
        }
      }
    }
  }
  in_pass_ = false;
  GM().passes.Inc();
  if (kMetricsCompiledIn) {
    GM().pass_us.Record(TraceRing::NowUs() - t0);
    if (parallel) {
      GM().parallel_levels.Record(levels.size());
      GM().parallel_width.Record(max_width);
      GM().parallel_barrier_wait_ns.Record(barrier_wait_ns);
    }
  }
  span.Arg("origins", origins.size());
  span.Arg("visited", visited);
  span.Arg("levels", levels.size());
  span.Arg("max_width", max_width);
  span.Arg("docs_reevaluated",
           host_->stats_.query_evaluations + host_->stats_.delta_evaluations -
               evals_before);
  span.Arg("cache_hits",
           host_->stats_.short_circuit_propagations - short_circuits_before);
  if (!status.ok()) {
    // Hand the unconsumed deltas back so the next flush retries; dropping them would
    // let downstream caches go quietly stale.
    for (auto& [uid, delta] : origins) {
      pending_origins_[uid] |= delta;
    }
    return status;
  }
  CompactDocLog();
  return OkResult();
}

// ---------------------------------------------------------------------------
// Visits
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::VisitEager(DirUid uid) {
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, host_->MetaOfUid(uid));
  if (!meta->IsSemantic()) {
    return OkResult();  // syntactic directories own no transient links
  }
  HAC_ASSIGN_OR_RETURN(std::string path, host_->uid_map_.PathOf(uid));
  std::string parent_path = DirName(path);

  // If the parent is a semantic mount point, the query's scope includes the mounted
  // name spaces: forward the content part and import the results first (section 3.1).
  if (const SemanticMount* mount = host_->mounts_.FindSemanticAt(parent_path);
      mount != nullptr) {
    HAC_RETURN_IF_ERROR(host_->ImportRemoteResults(*mount, *meta->query));
    HAC_ASSIGN_OR_RETURN(meta, host_->MetaOfUid(uid));  // imports may rehash metadata_
  }

  // Hierarchical refinement: the query is evaluated against the scope the parent
  // provides (equivalent to the paper's `<query> AND dir(parent)` encoding, since the
  // evaluator interprets NOT relative to the supplied scope). User-written dir()
  // references resolve to the referenced directory's own contents.
  HAC_ASSIGN_OR_RETURN(DirUid parent_uid, host_->uid_map_.UidOf(parent_path));
  HAC_ASSIGN_OR_RETURN(Bitmap parent_scope, host_->ScopeOfUid(parent_uid));

  DirResolver resolver = [this](DirUid ref) -> Result<Bitmap> {
    return host_->DirContentsOfUid(ref);
  };
  ++host_->stats_.query_evaluations;
  GM().query_evaluations.Inc();
  // The stored query stays as written (GetQuery renders it back); evaluation runs the
  // optimized form, re-derived here so selectivity ordering uses current statistics.
  QueryExprPtr optimized = OptimizeQuery(meta->query->Clone(), host_->index_.get());
  HAC_ASSIGN_OR_RETURN(Bitmap raw,
                       host_->index_->Evaluate(*optimized, parent_scope, &resolver));

  Bitmap transient_delta;
  return MaterializeTransients(uid, path, raw, /*refresh_filter=*/nullptr,
                               &transient_delta);
}

Result<void> ConsistencyEngine::VisitIncremental(
    DirUid uid, const std::map<DirUid, Bitmap>& origins,
    std::unordered_map<DirUid, Bitmap>* contents_delta) {
  VisitPlan plan = PlanVisit(uid, origins, *contents_delta, /*after_import=*/false);
  if (plan.action == VisitPlan::Action::kNeedsImport) {
    // Serial-only detour: the parent is a semantic mount point, so the query's scope
    // includes the mounted name spaces. Each visit re-imports (the remote side may
    // have new results for the same query) and never short-circuits.
    auto meta_or = host_->MetaOfUid(uid);
    if (!meta_or.ok()) {
      return OkResult();
    }
    const SemanticMount* mount = host_->mounts_.FindSemanticAt(DirName(plan.path));
    if (mount != nullptr) {
      HAC_RETURN_IF_ERROR(host_->ImportRemoteResults(*mount, *meta_or.value()->query));
    }
    // Re-plan from fresh state: imports may rehash metadata_ and log new docs.
    plan = PlanVisit(uid, origins, *contents_delta, /*after_import=*/true);
  }
  return ApplyVisit(&plan, contents_delta);
}

ConsistencyEngine::VisitPlan ConsistencyEngine::PlanVisit(
    DirUid uid, const std::map<DirUid, Bitmap>& origins,
    const std::unordered_map<DirUid, Bitmap>& contents_delta, bool after_import) {
  VisitPlan plan;
  plan.uid = uid;
  auto meta_or = host_->MetaOfUid(uid);
  if (!meta_or.ok()) {
    return plan;  // removed while the batch was open: kSkip with ok error
  }
  const DirMetadata* meta = meta_or.value();
  const bool is_origin = origins.count(uid) != 0;
  plan.dep_epoch_sum = DepEpochSum(uid);

  if (!meta->IsSemantic()) {
    // Scope-transparent bookkeeping: a syntactic directory passes its parent's scope
    // through, so an upstream change must bump its epoch for its own dependents to
    // notice. The stored dep_epoch_sum (no cached result needed) detects "upstream
    // actually moved" vs "visited for nothing".
    plan.action = VisitPlan::Action::kSyntactic;
    plan.bump_epoch = is_origin || plan.dep_epoch_sum != meta->eval.dep_epoch_sum;
    return plan;
  }

  auto path_or = host_->uid_map_.PathOf(uid);
  if (!path_or.ok()) {
    plan.error = path_or.error();
    return plan;
  }
  plan.path = std::move(path_or).value();
  std::string parent_path = DirName(plan.path);
  if (!after_import && host_->mounts_.FindSemanticAt(parent_path) != nullptr) {
    plan.action = VisitPlan::Action::kNeedsImport;
    return plan;
  }

  Bitmap doc_delta = DocDeltaSince(meta->eval.doc_gen_seen);
  std::vector<DirUid> deps = host_->graph_.DependenciesOf(uid);
  bool dep_changed = false;
  for (DirUid dep : deps) {
    auto it = contents_delta.find(dep);
    if (it != contents_delta.end() && !it->second.Empty()) {
      dep_changed = true;
      break;
    }
  }

  // Short-circuit: nothing this directory reads has changed since its last visit.
  // A visit under a semantic mount (after_import) never short-circuits.
  if (!after_import && meta->eval.valid && !is_origin &&
      plan.dep_epoch_sum == meta->eval.dep_epoch_sum && doc_delta.Empty() &&
      !dep_changed) {
    plan.action = VisitPlan::Action::kShortCircuit;
    return plan;
  }

  auto parent_uid_or = host_->uid_map_.UidOf(parent_path);
  if (!parent_uid_or.ok()) {
    plan.error = parent_uid_or.error();
    return plan;
  }
  auto parent_scope_or = host_->ScopeOfUid(parent_uid_or.value());
  if (!parent_scope_or.ok()) {
    plan.error = parent_scope_or.error();
    return plan;
  }
  plan.parent_scope = std::move(parent_scope_or).value();
  DirResolver resolver = [this](DirUid ref) -> Result<Bitmap> {
    return host_->DirContentsOfUid(ref);
  };
  QueryExprPtr optimized = OptimizeQuery(meta->query->Clone(), host_->index_.get());

  if (!meta->eval.valid) {
    plan.full_eval = true;
    ++host_->stats_.query_evaluations;
    GM().query_evaluations.Inc();
    auto raw_or = host_->index_->Evaluate(*optimized, plan.parent_scope, &resolver);
    if (!raw_or.ok()) {
      plan.error = raw_or.error();
      return plan;
    }
    plan.raw = std::move(raw_or).value();
  } else {
    Bitmap scope_added, scope_removed;
    meta->eval.scope.DiffWith(plan.parent_scope, &scope_added, &scope_removed);
    plan.delta = std::move(scope_added);
    plan.delta |= scope_removed;
    plan.delta |= doc_delta;
    for (DirUid dep : deps) {
      if (auto it = contents_delta.find(dep); it != contents_delta.end()) {
        plan.delta |= it->second;
      }
    }
    if (auto it = origins.find(uid); it != origins.end()) {
      plan.delta |= it->second;
    }
    plan.raw = meta->eval.raw_result;
    plan.raw.AndNot(plan.delta);
    Bitmap eval_scope = plan.parent_scope;
    eval_scope &= plan.delta;
    if (!eval_scope.Empty()) {
      ++host_->stats_.delta_evaluations;
      GM().delta_evaluations.Inc();
      auto part_or = host_->index_->Evaluate(*optimized, eval_scope, &resolver);
      if (!part_or.ok()) {
        plan.error = part_or.error();
        return plan;
      }
      plan.raw |= std::move(part_or).value();
    }
  }
  plan.action = VisitPlan::Action::kEvaluate;
  return plan;
}

Result<void> ConsistencyEngine::ApplyVisit(
    VisitPlan* plan, std::unordered_map<DirUid, Bitmap>* contents_delta) {
  switch (plan->action) {
    case VisitPlan::Action::kSkip:
    case VisitPlan::Action::kNeedsImport:  // only reachable on planner error paths
      return plan->error;
    case VisitPlan::Action::kSyntactic: {
      auto meta_or = host_->MetaOfUid(plan->uid);
      if (!meta_or.ok()) {
        return OkResult();
      }
      DirMetadata* meta = meta_or.value();
      if (plan->bump_epoch) {
        ++meta->scope_epoch;
      }
      meta->eval.dep_epoch_sum = plan->dep_epoch_sum;
      return OkResult();
    }
    case VisitPlan::Action::kShortCircuit: {
      auto meta_or = host_->MetaOfUid(plan->uid);
      if (!meta_or.ok()) {
        return OkResult();
      }
      ++host_->stats_.short_circuit_propagations;
      GM().short_circuits.Inc();
      meta_or.value()->eval.doc_gen_seen = gen_ - 1;
      return OkResult();
    }
    case VisitPlan::Action::kEvaluate:
      break;
  }

  ++host_->stats_.scope_propagations;
  GM().scope_propagations.Inc();
  const Bitmap* refresh_filter = plan->full_eval ? nullptr : &plan->delta;
  Bitmap transient_delta;
  HAC_RETURN_IF_ERROR(MaterializeTransients(plan->uid, plan->path, plan->raw,
                                            refresh_filter, &transient_delta));
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, host_->MetaOfUid(plan->uid));
  if (!transient_delta.Empty()) {
    ++meta->scope_epoch;
    (*contents_delta)[plan->uid] |= transient_delta;
  }
  meta->eval.valid = true;
  meta->eval.raw_result = std::move(plan->raw);
  meta->eval.scope = std::move(plan->parent_scope);
  meta->eval.dep_epoch_sum = plan->dep_epoch_sum;  // deps finalized in earlier levels
  meta->eval.doc_gen_seen = gen_ - 1;  // in-pass entries re-apply next pass: idempotent
  return OkResult();
}

Result<void> ConsistencyEngine::MaterializeTransients(DirUid uid, const std::string& path,
                                                      const Bitmap& raw,
                                                      const Bitmap* refresh_filter,
                                                      Bitmap* transient_delta) {
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, host_->MetaOfUid(uid));
  // A file physically sitting in this very directory is already "here": no self-link.
  Bitmap result = raw;
  result.AndNot(host_->registry_.DirectChildrenOf(path));

  // The user's edits always win: permanent links are never re-derived, prohibited links
  // never return.
  Bitmap new_transient = result;
  new_transient.AndNot(meta->links.permanent());
  new_transient.AndNot(meta->links.prohibited());

  // Materialize the diff as symlink churn in the VFS.
  Bitmap old_transient = meta->links.transient();
  Bitmap removed = old_transient;
  removed.AndNot(new_transient);
  Bitmap added = new_transient;
  added.AndNot(old_transient);

  Result<void> status = OkResult();
  removed.ForEach([&](DocId doc) {
    if (!status.ok()) {
      return;
    }
    auto name = meta->links.NameOf(doc);
    if (!name.ok()) {
      return;
    }
    (void)meta->links.RemoveLink(name.value());
    (void)host_->vfs_.Unlink(JoinPath(path == "/" ? "" : path, name.value()));
    ++host_->stats_.transient_links_removed;
    GM().transient_removed.Inc();
  });
  HAC_RETURN_IF_ERROR(status);

  auto taken = [this, &path](const std::string& candidate) {
    return host_->vfs_.Exists(JoinPath(path == "/" ? "" : path, candidate));
  };
  added.ForEach([&](DocId doc) {
    if (!status.ok()) {
      return;
    }
    const FileRecord* rec = host_->registry_.Get(doc);
    if (rec == nullptr || !rec->alive) {
      return;
    }
    std::string name = meta->links.UniqueName(BaseName(rec->path), taken);
    Result<void> s =
        host_->vfs_.Symlink(rec->path, JoinPath(path == "/" ? "" : path, name));
    if (!s.ok()) {
      status = s;
      return;
    }
    s = meta->links.AddLink(name, doc, LinkClass::kTransient);
    if (!s.ok()) {
      status = s;
      return;
    }
    ++host_->stats_.transient_links_added;
    GM().transient_added.Inc();
  });
  HAC_RETURN_IF_ERROR(status);

  // Refresh stale symlink targets (files may have been renamed since materialization).
  // An incremental visit only needs to look at links whose doc is in the delta — a
  // rename always logs the doc, so anything outside the delta still points right.
  for (const auto& [name, rec] : meta->links.links()) {
    if (rec.doc == kInvalidDocId) {
      continue;
    }
    if (refresh_filter != nullptr && !refresh_filter->Test(rec.doc)) {
      continue;
    }
    const FileRecord* file = host_->registry_.Get(rec.doc);
    if (file == nullptr || !file->alive) {
      continue;
    }
    std::string link_path = JoinPath(path == "/" ? "" : path, name);
    auto target = host_->vfs_.ReadLink(link_path);
    if (target.ok() && target.value() != file->path) {
      (void)host_->vfs_.Unlink(link_path);
      (void)host_->vfs_.Symlink(file->path, link_path);
    }
  }

  *transient_delta = old_transient;
  *transient_delta ^= new_transient;
  return OkResult();
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

uint64_t ConsistencyEngine::DepEpochSum(DirUid uid) const {
  // Epochs are monotone, so an unchanged SUM implies every term is unchanged.
  uint64_t sum = 0;
  for (DirUid dep : host_->graph_.DependenciesOf(uid)) {
    auto it = host_->metadata_.find(dep);
    if (it != host_->metadata_.end()) {
      sum += it->second.scope_epoch;
    }
  }
  return sum;
}

Bitmap ConsistencyEngine::DocDeltaSince(uint64_t gen_seen) const {
  Bitmap out;
  for (const auto& [gen, docs] : doc_log_) {
    if (gen > gen_seen) {
      out |= docs;
    }
  }
  return out;
}

void ConsistencyEngine::AppendDocLog(DocId doc) {
  if (doc_log_.empty() || doc_log_.back().first != gen_) {
    doc_log_.emplace_back(gen_, Bitmap());
  }
  doc_log_.back().second.Set(doc);
}

void ConsistencyEngine::CompactDocLog() {
  if (doc_log_.empty()) {
    return;
  }
  uint64_t min_seen = UINT64_MAX;
  bool any_cached = false;
  for (const auto& [uid, meta] : host_->metadata_) {
    if (meta.IsSemantic() && meta.eval.valid) {
      any_cached = true;
      min_seen = std::min(min_seen, meta.eval.doc_gen_seen);
    }
  }
  if (!any_cached) {
    doc_log_.clear();  // cold caches full-evaluate; the log has no reader
    return;
  }
  auto first_kept = std::find_if(doc_log_.begin(), doc_log_.end(),
                                 [&](const auto& e) { return e.first > min_seen; });
  doc_log_.erase(doc_log_.begin(), first_kept);
}

}  // namespace hac
