// Implementation of both propagation strategies. See consistency_engine.h for the
// model; the delta rule used by the incremental visit is
//
//   raw' = (raw ∖ Δ) ∪ Eval(query, scope' ∩ Δ)
//
// which is exact for any Δ that covers every doc whose membership could have changed:
// the evaluator decides membership pointwise per document, so docs outside Δ with
// unchanged scope membership, index state and dir()-reference status keep their old
// verdict. Δ is assembled per visit from four sources: the scope diff against the
// cached scope, the global doc-change log since this directory's watermark, the
// in-pass contents deltas of its dependencies, and its own origin delta.
#include "src/core/consistency_engine.h"

#include <algorithm>

#include "src/core/hac_file_system.h"
#include "src/index/query_optimizer.h"
#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/vfs/path.h"

namespace hac {

namespace {

// Process-global twins of the per-instance StatsSnapshot counters (which tests and
// ablations still read per HacFileSystem). References are resolved once.
struct EngineMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& query_evaluations = reg.GetCounter(metric_names::kConsistencyQueryEvaluations);
  Counter& delta_evaluations = reg.GetCounter(metric_names::kConsistencyDeltaEvaluations);
  Counter& scope_propagations = reg.GetCounter(metric_names::kConsistencyScopePropagations);
  Counter& short_circuits = reg.GetCounter(metric_names::kConsistencyShortCircuits);
  Counter& batch_flushes = reg.GetCounter(metric_names::kConsistencyBatchFlushes);
  Counter& batched_mutations = reg.GetCounter(metric_names::kConsistencyBatchedMutations);
  Counter& passes = reg.GetCounter(metric_names::kConsistencyPasses);
  Counter& transient_added = reg.GetCounter(metric_names::kLinksTransientAdded);
  Counter& transient_removed = reg.GetCounter(metric_names::kLinksTransientRemoved);
  Histogram& pass_us = reg.GetHistogram(metric_names::kConsistencyPassUs);
};

EngineMetrics& GM() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Notifications
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::NotifyScopeChanged(DirUid uid, const Bitmap* contents_delta) {
  if (suspended_) {
    return OkResult();  // persistence replay: one global pass runs at the end
  }
  if (mode_ == ConsistencyMode::kEager) {
    if (in_pass_) {
      return OkResult();  // the outer propagation already covers this change
    }
    return SyncFrom(uid);
  }
  if (auto meta = host_->MetaOfUid(uid); meta.ok()) {
    ++meta.value()->scope_epoch;  // dependents' epoch sums now mismatch
  }
  Bitmap& slot = pending_origins_[uid];
  if (contents_delta != nullptr) {
    slot |= *contents_delta;
  }
  if (in_pass_) {
    return OkResult();  // folded into the next flush (remote imports, mid-pass edits)
  }
  if (batch_depth_ > 0) {
    ++host_->stats_.batched_mutations;
    GM().batched_mutations.Inc();
    batch_dirty_ = true;
    return OkResult();
  }
  return Flush();
}

void ConsistencyEngine::NoteDocChanged(DocId doc) {
  if (mode_ == ConsistencyMode::kEager || suspended_ || doc == kInvalidDocId) {
    return;  // eager visits always re-evaluate in full; no log needed
  }
  AppendDocLog(doc);
}

void ConsistencyEngine::InvalidateCache(DirUid uid) {
  if (auto meta = host_->MetaOfUid(uid); meta.ok()) {
    meta.value()->eval.Invalidate();
  }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::SyncFrom(DirUid uid) {
  if (suspended_ || in_pass_) {
    return OkResult();
  }
  if (mode_ == ConsistencyMode::kEager) {
    TraceSpan span(metric_names::kSpanConsistencyPass);
    const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
    in_pass_ = true;
    uint64_t visited = 1;
    Result<void> status = VisitEager(uid);
    ++host_->stats_.scope_propagations;
    GM().scope_propagations.Inc();
    if (status.ok()) {
      for (DirUid dep : host_->graph_.DependentsInTopoOrder(uid)) {
        status = VisitEager(dep);
        ++host_->stats_.scope_propagations;
        GM().scope_propagations.Inc();
        ++visited;
        if (!status.ok()) {
          break;
        }
      }
    }
    in_pass_ = false;
    GM().passes.Inc();
    if (kMetricsCompiledIn) {
      GM().pass_us.Record(TraceRing::NowUs() - t0);
    }
    span.Arg("origins", 1);
    span.Arg("visited", visited);
    return status;
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  origins[uid];  // an explicit sync never short-circuits the target itself
  return RunPass(std::move(origins), /*full=*/false);
}

Result<void> ConsistencyEngine::PropagateAll() {
  if (suspended_ || in_pass_) {
    return OkResult();
  }
  if (mode_ == ConsistencyMode::kEager) {
    TraceSpan span(metric_names::kSpanConsistencyPass);
    const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
    in_pass_ = true;
    uint64_t visited = 0;
    Result<void> status = OkResult();
    for (DirUid uid : host_->graph_.FullTopoOrder()) {
      status = VisitEager(uid);
      ++host_->stats_.scope_propagations;
      GM().scope_propagations.Inc();
      ++visited;
      if (!status.ok()) {
        break;
      }
    }
    in_pass_ = false;
    GM().passes.Inc();
    if (kMetricsCompiledIn) {
      GM().pass_us.Record(TraceRing::NowUs() - t0);
    }
    span.Arg("visited", visited);
    return status;
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  return RunPass(std::move(origins), /*full=*/true);
}

Result<void> ConsistencyEngine::EndBatch() {
  if (batch_depth_ == 0) {
    return Error(ErrorCode::kInvalidArgument, "EndBatch without matching BeginBatch");
  }
  if (--batch_depth_ > 0) {
    return OkResult();  // only the outermost EndBatch flushes
  }
  return Flush();
}

Result<void> ConsistencyEngine::Flush() {
  if (suspended_ || in_pass_ || mode_ == ConsistencyMode::kEager) {
    return OkResult();  // eager never defers anything
  }
  if (pending_origins_.empty()) {
    return OkResult();
  }
  if (batch_dirty_) {
    ++host_->stats_.batch_flushes;
    GM().batch_flushes.Inc();
    batch_dirty_ = false;
  }
  std::map<DirUid, Bitmap> origins = std::move(pending_origins_);
  pending_origins_.clear();
  return RunPass(std::move(origins), /*full=*/false);
}

Result<void> ConsistencyEngine::RunPass(std::map<DirUid, Bitmap> origins, bool full) {
  TraceSpan span(metric_names::kSpanConsistencyPass);
  const uint64_t t0 = kMetricsCompiledIn ? TraceRing::NowUs() : 0;
  const uint64_t evals_before =
      host_->stats_.query_evaluations + host_->stats_.delta_evaluations;
  const uint64_t short_circuits_before = host_->stats_.short_circuit_propagations;
  in_pass_ = true;
  ++gen_;
  std::vector<DirUid> order;
  if (full) {
    order = host_->graph_.FullTopoOrder();
  } else {
    std::vector<DirUid> sources;
    sources.reserve(origins.size());
    for (const auto& [uid, delta] : origins) {
      sources.push_back(uid);
    }
    order = host_->graph_.AffectedInTopoOrder(sources);
  }
  // How each directory's contents changed within THIS pass, seeded with the origins'
  // mutation deltas. dir() dependents re-evaluate exactly over these docs.
  std::unordered_map<DirUid, Bitmap> contents_delta;
  for (const auto& [uid, delta] : origins) {
    if (!delta.Empty()) {
      contents_delta[uid] |= delta;
    }
  }
  Result<void> status = OkResult();
  for (DirUid uid : order) {
    status = VisitIncremental(uid, origins, &contents_delta);
    if (!status.ok()) {
      break;
    }
  }
  in_pass_ = false;
  GM().passes.Inc();
  if (kMetricsCompiledIn) {
    GM().pass_us.Record(TraceRing::NowUs() - t0);
  }
  span.Arg("origins", origins.size());
  span.Arg("visited", order.size());
  span.Arg("docs_reevaluated",
           host_->stats_.query_evaluations + host_->stats_.delta_evaluations -
               evals_before);
  span.Arg("cache_hits",
           host_->stats_.short_circuit_propagations - short_circuits_before);
  if (!status.ok()) {
    // Hand the unconsumed deltas back so the next flush retries; dropping them would
    // let downstream caches go quietly stale.
    for (auto& [uid, delta] : origins) {
      pending_origins_[uid] |= delta;
    }
    return status;
  }
  CompactDocLog();
  return OkResult();
}

// ---------------------------------------------------------------------------
// Visits
// ---------------------------------------------------------------------------

Result<void> ConsistencyEngine::VisitEager(DirUid uid) {
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, host_->MetaOfUid(uid));
  if (!meta->IsSemantic()) {
    return OkResult();  // syntactic directories own no transient links
  }
  HAC_ASSIGN_OR_RETURN(std::string path, host_->uid_map_.PathOf(uid));
  std::string parent_path = DirName(path);

  // If the parent is a semantic mount point, the query's scope includes the mounted
  // name spaces: forward the content part and import the results first (section 3.1).
  if (const SemanticMount* mount = host_->mounts_.FindSemanticAt(parent_path);
      mount != nullptr) {
    HAC_RETURN_IF_ERROR(host_->ImportRemoteResults(*mount, *meta->query));
    HAC_ASSIGN_OR_RETURN(meta, host_->MetaOfUid(uid));  // imports may rehash metadata_
  }

  // Hierarchical refinement: the query is evaluated against the scope the parent
  // provides (equivalent to the paper's `<query> AND dir(parent)` encoding, since the
  // evaluator interprets NOT relative to the supplied scope). User-written dir()
  // references resolve to the referenced directory's own contents.
  HAC_ASSIGN_OR_RETURN(DirUid parent_uid, host_->uid_map_.UidOf(parent_path));
  HAC_ASSIGN_OR_RETURN(Bitmap parent_scope, host_->ScopeOfUid(parent_uid));

  DirResolver resolver = [this](DirUid ref) -> Result<Bitmap> {
    return host_->DirContentsOfUid(ref);
  };
  ++host_->stats_.query_evaluations;
  GM().query_evaluations.Inc();
  // The stored query stays as written (GetQuery renders it back); evaluation runs the
  // optimized form, re-derived here so selectivity ordering uses current statistics.
  QueryExprPtr optimized = OptimizeQuery(meta->query->Clone(), host_->index_.get());
  HAC_ASSIGN_OR_RETURN(Bitmap raw,
                       host_->index_->Evaluate(*optimized, parent_scope, &resolver));

  Bitmap transient_delta;
  return MaterializeTransients(uid, path, raw, /*refresh_filter=*/nullptr,
                               &transient_delta);
}

Result<void> ConsistencyEngine::VisitIncremental(
    DirUid uid, const std::map<DirUid, Bitmap>& origins,
    std::unordered_map<DirUid, Bitmap>* contents_delta) {
  auto meta_or = host_->MetaOfUid(uid);
  if (!meta_or.ok()) {
    return OkResult();  // removed while the batch was open
  }
  DirMetadata* meta = meta_or.value();
  bool is_origin = origins.count(uid) != 0;
  uint64_t cur_dep_sum = DepEpochSum(uid);

  if (!meta->IsSemantic()) {
    // Scope-transparent bookkeeping: a syntactic directory passes its parent's scope
    // through, so an upstream change must bump its epoch for its own dependents to
    // notice. The stored dep_epoch_sum (no cached result needed) detects "upstream
    // actually moved" vs "visited for nothing".
    if (is_origin || cur_dep_sum != meta->eval.dep_epoch_sum) {
      ++meta->scope_epoch;
    }
    meta->eval.dep_epoch_sum = cur_dep_sum;
    return OkResult();
  }

  HAC_ASSIGN_OR_RETURN(std::string path, host_->uid_map_.PathOf(uid));
  std::string parent_path = DirName(path);
  const SemanticMount* mount = host_->mounts_.FindSemanticAt(parent_path);

  Bitmap doc_delta = DocDeltaSince(meta->eval.doc_gen_seen);
  bool dep_changed = false;
  std::vector<DirUid> deps = host_->graph_.DependenciesOf(uid);
  for (DirUid dep : deps) {
    auto it = contents_delta->find(dep);
    if (it != contents_delta->end() && !it->second.Empty()) {
      dep_changed = true;
      break;
    }
  }

  // Short-circuit: nothing this directory reads has changed since its last visit.
  // Directories under a semantic mount never short-circuit — each visit re-imports
  // (the remote side may have new results for the same query).
  if (meta->eval.valid && !is_origin && mount == nullptr &&
      cur_dep_sum == meta->eval.dep_epoch_sum && doc_delta.Empty() && !dep_changed) {
    ++host_->stats_.short_circuit_propagations;
    GM().short_circuits.Inc();
    meta->eval.doc_gen_seen = gen_ - 1;
    return OkResult();
  }

  if (mount != nullptr) {
    HAC_RETURN_IF_ERROR(host_->ImportRemoteResults(*mount, *meta->query));
    HAC_ASSIGN_OR_RETURN(meta, host_->MetaOfUid(uid));  // imports may rehash metadata_
    doc_delta = DocDeltaSince(meta->eval.doc_gen_seen);  // imports log new docs
  }

  HAC_ASSIGN_OR_RETURN(DirUid parent_uid, host_->uid_map_.UidOf(parent_path));
  HAC_ASSIGN_OR_RETURN(Bitmap parent_scope, host_->ScopeOfUid(parent_uid));
  DirResolver resolver = [this](DirUid ref) -> Result<Bitmap> {
    return host_->DirContentsOfUid(ref);
  };
  QueryExprPtr optimized = OptimizeQuery(meta->query->Clone(), host_->index_.get());

  Bitmap raw;
  Bitmap delta;
  const Bitmap* refresh_filter = nullptr;
  if (!meta->eval.valid) {
    ++host_->stats_.query_evaluations;
    GM().query_evaluations.Inc();
    HAC_ASSIGN_OR_RETURN(raw,
                         host_->index_->Evaluate(*optimized, parent_scope, &resolver));
  } else {
    Bitmap scope_added, scope_removed;
    meta->eval.scope.DiffWith(parent_scope, &scope_added, &scope_removed);
    delta = std::move(scope_added);
    delta |= scope_removed;
    delta |= doc_delta;
    for (DirUid dep : deps) {
      if (auto it = contents_delta->find(dep); it != contents_delta->end()) {
        delta |= it->second;
      }
    }
    if (auto it = origins.find(uid); it != origins.end()) {
      delta |= it->second;
    }
    raw = meta->eval.raw_result;
    raw.AndNot(delta);
    Bitmap eval_scope = parent_scope;
    eval_scope &= delta;
    if (!eval_scope.Empty()) {
      ++host_->stats_.delta_evaluations;
      GM().delta_evaluations.Inc();
      HAC_ASSIGN_OR_RETURN(Bitmap part,
                           host_->index_->Evaluate(*optimized, eval_scope, &resolver));
      raw |= part;
    }
    refresh_filter = &delta;
  }

  ++host_->stats_.scope_propagations;
  GM().scope_propagations.Inc();
  Bitmap transient_delta;
  HAC_RETURN_IF_ERROR(
      MaterializeTransients(uid, path, raw, refresh_filter, &transient_delta));
  HAC_ASSIGN_OR_RETURN(meta, host_->MetaOfUid(uid));
  if (!transient_delta.Empty()) {
    ++meta->scope_epoch;
    (*contents_delta)[uid] |= transient_delta;
  }
  meta->eval.valid = true;
  meta->eval.raw_result = std::move(raw);
  meta->eval.scope = std::move(parent_scope);
  meta->eval.dep_epoch_sum = DepEpochSum(uid);  // deps were visited first (topo order)
  meta->eval.doc_gen_seen = gen_ - 1;  // in-pass entries re-apply next pass: idempotent
  return OkResult();
}

Result<void> ConsistencyEngine::MaterializeTransients(DirUid uid, const std::string& path,
                                                      const Bitmap& raw,
                                                      const Bitmap* refresh_filter,
                                                      Bitmap* transient_delta) {
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, host_->MetaOfUid(uid));
  // A file physically sitting in this very directory is already "here": no self-link.
  Bitmap result = raw;
  result.AndNot(host_->registry_.DirectChildrenOf(path));

  // The user's edits always win: permanent links are never re-derived, prohibited links
  // never return.
  Bitmap new_transient = result;
  new_transient.AndNot(meta->links.permanent());
  new_transient.AndNot(meta->links.prohibited());

  // Materialize the diff as symlink churn in the VFS.
  Bitmap old_transient = meta->links.transient();
  Bitmap removed = old_transient;
  removed.AndNot(new_transient);
  Bitmap added = new_transient;
  added.AndNot(old_transient);

  Result<void> status = OkResult();
  removed.ForEach([&](DocId doc) {
    if (!status.ok()) {
      return;
    }
    auto name = meta->links.NameOf(doc);
    if (!name.ok()) {
      return;
    }
    (void)meta->links.RemoveLink(name.value());
    (void)host_->vfs_.Unlink(JoinPath(path == "/" ? "" : path, name.value()));
    ++host_->stats_.transient_links_removed;
    GM().transient_removed.Inc();
  });
  HAC_RETURN_IF_ERROR(status);

  auto taken = [this, &path](const std::string& candidate) {
    return host_->vfs_.Exists(JoinPath(path == "/" ? "" : path, candidate));
  };
  added.ForEach([&](DocId doc) {
    if (!status.ok()) {
      return;
    }
    const FileRecord* rec = host_->registry_.Get(doc);
    if (rec == nullptr || !rec->alive) {
      return;
    }
    std::string name = meta->links.UniqueName(BaseName(rec->path), taken);
    Result<void> s =
        host_->vfs_.Symlink(rec->path, JoinPath(path == "/" ? "" : path, name));
    if (!s.ok()) {
      status = s;
      return;
    }
    s = meta->links.AddLink(name, doc, LinkClass::kTransient);
    if (!s.ok()) {
      status = s;
      return;
    }
    ++host_->stats_.transient_links_added;
    GM().transient_added.Inc();
  });
  HAC_RETURN_IF_ERROR(status);

  // Refresh stale symlink targets (files may have been renamed since materialization).
  // An incremental visit only needs to look at links whose doc is in the delta — a
  // rename always logs the doc, so anything outside the delta still points right.
  for (const auto& [name, rec] : meta->links.links()) {
    if (rec.doc == kInvalidDocId) {
      continue;
    }
    if (refresh_filter != nullptr && !refresh_filter->Test(rec.doc)) {
      continue;
    }
    const FileRecord* file = host_->registry_.Get(rec.doc);
    if (file == nullptr || !file->alive) {
      continue;
    }
    std::string link_path = JoinPath(path == "/" ? "" : path, name);
    auto target = host_->vfs_.ReadLink(link_path);
    if (target.ok() && target.value() != file->path) {
      (void)host_->vfs_.Unlink(link_path);
      (void)host_->vfs_.Symlink(file->path, link_path);
    }
  }

  *transient_delta = old_transient;
  *transient_delta ^= new_transient;
  return OkResult();
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

uint64_t ConsistencyEngine::DepEpochSum(DirUid uid) const {
  // Epochs are monotone, so an unchanged SUM implies every term is unchanged.
  uint64_t sum = 0;
  for (DirUid dep : host_->graph_.DependenciesOf(uid)) {
    auto it = host_->metadata_.find(dep);
    if (it != host_->metadata_.end()) {
      sum += it->second.scope_epoch;
    }
  }
  return sum;
}

Bitmap ConsistencyEngine::DocDeltaSince(uint64_t gen_seen) const {
  Bitmap out;
  for (const auto& [gen, docs] : doc_log_) {
    if (gen > gen_seen) {
      out |= docs;
    }
  }
  return out;
}

void ConsistencyEngine::AppendDocLog(DocId doc) {
  if (doc_log_.empty() || doc_log_.back().first != gen_) {
    doc_log_.emplace_back(gen_, Bitmap());
  }
  doc_log_.back().second.Set(doc);
}

void ConsistencyEngine::CompactDocLog() {
  if (doc_log_.empty()) {
    return;
  }
  uint64_t min_seen = UINT64_MAX;
  bool any_cached = false;
  for (const auto& [uid, meta] : host_->metadata_) {
    if (meta.IsSemantic() && meta.eval.valid) {
      any_cached = true;
      min_seen = std::min(min_seen, meta.eval.doc_gen_seen);
    }
  }
  if (!any_cached) {
    doc_log_.clear();  // cold caches full-evaluate; the log has no reader
    return;
  }
  auto first_kept = std::find_if(doc_log_.begin(), doc_log_.end(),
                                 [&](const auto& e) { return e.first > min_seen; });
  doc_log_.erase(doc_log_.begin(), first_kept);
}

}  // namespace hac
