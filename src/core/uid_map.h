// Global UID <-> directory-path map.
//
// Queries never embed path names: `dir(/a/b)` is bound to a stable DirUid at query-set
// time (section 2.5 of the paper). Renaming a directory updates this one map; every
// query that references the directory stays valid. Every directory in a HAC file system
// gets a UID at creation ("HAC keeps track of the name of this directory in a global
// map"), the root included.
#ifndef HAC_CORE_UID_MAP_H_
#define HAC_CORE_UID_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/query.h"  // DirUid
#include "src/support/result.h"

namespace hac {

class UidMap {
 public:
  UidMap();

  // Registers `path` (normalized absolute), returning its new UID.
  // Fails with kAlreadyExists if the path is registered.
  Result<DirUid> Register(const std::string& path);

  Result<DirUid> UidOf(const std::string& path) const;
  Result<std::string> PathOf(DirUid uid) const;
  bool Contains(DirUid uid) const { return uid_to_path_.count(uid) != 0; }

  // Removes the entry for `path`.
  Result<void> Remove(const std::string& path);

  // Rewrites every registered path inside `from`'s subtree to live under `to`.
  // Returns the UIDs whose paths changed.
  std::vector<DirUid> RenameSubtree(const std::string& from, const std::string& to);

  // UIDs of all registered directories inside `root`'s subtree (including `root` itself
  // when registered).
  std::vector<DirUid> UidsWithin(const std::string& root) const;

  size_t Size() const { return uid_to_path_.size(); }
  size_t SizeBytes() const;

  DirUid root_uid() const { return root_uid_; }

 private:
  std::unordered_map<DirUid, std::string> uid_to_path_;
  std::unordered_map<std::string, DirUid> path_to_uid_;
  DirUid next_uid_ = 1;
  DirUid root_uid_ = kInvalidDirUid;
};

}  // namespace hac

#endif  // HAC_CORE_UID_MAP_H_
