// Ordinary file-system call surface of HacFileSystem: forwarding plus HAC bookkeeping.
// The scope-consistency engine lives in consistency.cc.
#include "src/core/hac_file_system.h"

#include <algorithm>

#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/vfs/path.h"

namespace hac {

namespace {

Counter& AttrCacheHitCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kAttrCacheHits);
  return c;
}

Counter& AttrCacheMissCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kAttrCacheMisses);
  return c;
}

}  // namespace

HacFileSystem::HacFileSystem(HacOptions options)
    : options_(options),
      index_(std::make_unique<InvertedIndex>(options.tokenizer)),
      engine_(std::make_unique<ConsistencyEngine>(this, options.consistency)) {
  // The root's bookkeeping: UID 1 (pre-registered by UidMap), a dependency-graph node,
  // and metadata with no query.
  DirUid root = uid_map_.root_uid();
  (void)graph_.AddNode(root);
  DirMetadata meta;
  meta.uid = root;
  meta.inode = vfs_.root_id();
  metadata_.emplace(root, std::move(meta));
  processes_.emplace_back();  // process 0
  if (options_.verify_results_with_content) {
    index_->SetContentVerifier([this](DocId doc) -> Result<std::string> {
      const FileRecord* rec = registry_.Get(doc);
      if (rec == nullptr || !rec->alive) {
        return Error(ErrorCode::kNotFound, "doc " + std::to_string(doc));
      }
      return vfs_.ReadFileToString(rec->path);
    });
  } else if (options_.parallelism > 1) {
    // Content verification evaluates through the VFS (above), which is not safe for
    // concurrent planners — parallelism stays off in that mode.
    propagation_pool_ = std::make_unique<ThreadPool>(options_.parallelism - 1);
    engine_->SetParallelism(propagation_pool_.get(), options_.parallelism);
  }
}

// ---------------------------------------------------------------------------
// Routing & lookup helpers
// ---------------------------------------------------------------------------

Result<HacFileSystem::Routed> HacFileSystem::Route(const std::string& path) const {
  std::string norm = NormalizePath(path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + path);
  }
  const SyntacticMount* m = mounts_.FindSyntacticCovering(norm);
  if (m != nullptr) {
    return Routed{m->fs, RebasePath(norm, m->mount_path, m->remote_root), false};
  }
  return Routed{const_cast<FileSystem*>(&vfs_), norm, true};
}

Result<DirMetadata*> HacFileSystem::MetaOfPath(const std::string& norm_path) {
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(norm_path));
  return MetaOfUid(uid);
}

Result<DirMetadata*> HacFileSystem::MetaOfUid(DirUid uid) {
  auto it = metadata_.find(uid);
  if (it == metadata_.end()) {
    return Error(ErrorCode::kNotFound, "no metadata for uid " + std::to_string(uid));
  }
  return &it->second;
}

Result<const DirMetadata*> HacFileSystem::MetaOfUid(DirUid uid) const {
  auto it = metadata_.find(uid);
  if (it == metadata_.end()) {
    return Error(ErrorCode::kNotFound, "no metadata for uid " + std::to_string(uid));
  }
  return &it->second;
}

void HacFileSystem::NoteContentMutation() {
  ++content_mutations_since_reindex_;
  if (engine_->InBatch()) {
    // The auto-reindex check runs once, when the outermost EndBatch flushes.
    batch_had_content_mutation_ = true;
    return;
  }
  MaybeAutoReindex();
}

// ---------------------------------------------------------------------------
// Batched mutation surface
// ---------------------------------------------------------------------------

void HacFileSystem::BeginBatch() { engine_->BeginBatch(); }

Result<void> HacFileSystem::EndBatch() {
  HAC_RETURN_IF_ERROR(engine_->EndBatch());
  if (!engine_->InBatch() && batch_had_content_mutation_) {
    batch_had_content_mutation_ = false;
    MaybeAutoReindex();
  }
  return OkResult();
}

bool HacFileSystem::InBatch() const { return engine_->InBatch(); }

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Result<void> HacFileSystem::RegisterDirectory(const std::string& norm_path) {
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.Register(norm_path));
  HAC_RETURN_IF_ERROR(graph_.AddNode(uid));
  HAC_ASSIGN_OR_RETURN(DirUid parent_uid, uid_map_.UidOf(DirName(norm_path)));
  HAC_RETURN_IF_ERROR(graph_.SetDependencies(uid, {parent_uid}));
  DirMetadata meta;
  meta.uid = uid;
  auto inode = vfs_.Lookup(norm_path, /*follow_final=*/false);
  meta.inode = inode.ok() ? inode.value() : kInvalidInode;
  metadata_.emplace(uid, std::move(meta));
  journal_.Append(JournalOp::kDirCreated, uid, norm_path);
  return OkResult();
}

Result<void> HacFileSystem::Mkdir(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return r.fs->Mkdir(r.path);
  }
  HAC_RETURN_IF_ERROR(vfs_.Mkdir(r.path));
  return RegisterDirectory(r.path);
}

Result<void> HacFileSystem::Rmdir(const std::string& path) {
  std::string norm = NormalizePath(path);
  if (mounts_.FindSemanticAt(norm) != nullptr) {
    return Error(ErrorCode::kBusy, norm + " is a semantic mount point");
  }
  for (const SyntacticMount& m : mounts_.syntactic()) {
    if (m.mount_path == norm) {
      return Error(ErrorCode::kBusy, norm + " is a syntactic mount point");
    }
  }
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return r.fs->Rmdir(r.path);
  }
  // The emptiness check below must see settled link sets, not a half-open batch.
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(r.path));
  if (!graph_.DirectDependentsOf(uid).empty()) {
    // Either child directories (then the directory is not empty) or query references
    // from elsewhere (then removal would orphan those queries).
    HAC_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, vfs_.ReadDir(r.path));
    if (!entries.empty()) {
      return Error(ErrorCode::kNotEmpty, r.path);
    }
    return Error(ErrorCode::kBusy, r.path + " is referenced by other queries");
  }
  HAC_RETURN_IF_ERROR(vfs_.Rmdir(r.path));
  (void)graph_.RemoveNode(uid);
  metadata_.erase(uid);
  (void)uid_map_.Remove(r.path);
  journal_.Append(JournalOp::kDirRemoved, uid, r.path);
  return OkResult();
}

Result<std::vector<DirEntry>> HacFileSystem::ReadDir(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (r.local) {
    // Listing a directory observes its link set: settle any batched mutations first.
    HAC_RETURN_IF_ERROR(engine_->Flush());
  }
  return r.fs->ReadDir(r.path);
}

// ---------------------------------------------------------------------------
// Streaming reads (core/paging.h)
// ---------------------------------------------------------------------------

uint64_t HacFileSystem::MutationEpoch() const {
  // Journaled records cover every acknowledged user mutation; reindexing settles
  // deferred data consistency without journaling, so its ingest/purge counters
  // fold in too. Monotone: drains don't reset RecordCount().
  return journal_.RecordCount() + stats_.docs_indexed.load(std::memory_order_relaxed) +
         stats_.docs_purged.load(std::memory_order_relaxed);
}

namespace {

Error StaleCursorError(uint64_t token_epoch, uint64_t epoch) {
  return Error(ErrorCode::kStaleCursor,
               "page token epoch " + std::to_string(token_epoch) +
                   " superseded by " + std::to_string(epoch) +
                   "; restart from the first page");
}

void ClampPage(size_t* max_entries, size_t* max_bytes) {
  if (*max_entries == 0) {
    *max_entries = kDefaultPageEntries;
  }
  *max_entries = std::min(*max_entries, kMaxPageEntries);
  if (*max_bytes == 0) {
    *max_bytes = kDefaultPageBytes;
  }
}

}  // namespace

Result<DirPageResult> HacFileSystem::ReadDirPage(const std::string& path,
                                                 const PageToken* token,
                                                 size_t max_entries, size_t max_bytes) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (r.local) {
    // Same read point as ReadDir: settle batched mutations before observing links.
    HAC_RETURN_IF_ERROR(engine_->Flush());
  }
  ClampPage(&max_entries, &max_bytes);
  const uint64_t epoch = MutationEpoch();
  const bool resuming = token != nullptr && !token->at_start;
  // A token with no delivered position yet has nothing to invalidate: it rebases
  // onto the current epoch instead of failing (open-then-write-then-fetch works).
  if (resuming && token->epoch != epoch) {
    return StaleCursorError(token->epoch, epoch);
  }
  const std::string& after = resuming ? token->last_name : std::string();
  DirPageResult page;
  if (r.local) {
    HAC_ASSIGN_OR_RETURN(page.entries, vfs_.ReadDirPage(r.path, after, max_entries,
                                                        max_bytes, &page.has_more));
  } else {
    // Mounted name spaces only expose the plain interface: enumerate fully and
    // slice — paging still bounds the *returned* (and wire-encoded) volume.
    HAC_ASSIGN_OR_RETURN(std::vector<DirEntry> all, r.fs->ReadDir(r.path));
    size_t bytes = 0;
    for (DirEntry& e : all) {
      if (resuming && e.name <= after) {
        continue;
      }
      if (page.entries.size() >= max_entries ||
          (!page.entries.empty() && bytes + e.name.size() > max_bytes)) {
        page.has_more = true;
        break;
      }
      bytes += e.name.size();
      page.entries.push_back(std::move(e));
    }
  }
  page.next = token != nullptr ? *token : PageToken{};
  page.next.epoch = epoch;
  if (!page.entries.empty()) {
    page.next.at_start = false;
    page.next.last_name = page.entries.back().name;
  }
  return page;
}

// ---------------------------------------------------------------------------
// Files & descriptors
// ---------------------------------------------------------------------------

Result<Fd> HacFileSystem::Open(const std::string& path, uint32_t flags) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    HAC_ASSIGN_OR_RETURN(Fd backend_fd, r.fs->Open(r.path, flags));
    return processes_[current_process_].Allocate(
        HacOpenFile{r.fs, backend_fd, kInvalidInode, NormalizePath(path)});
  }
  const bool existed = vfs_.Exists(r.path);
  HAC_ASSIGN_OR_RETURN(Fd backend_fd, vfs_.Open(r.path, flags));
  HAC_ASSIGN_OR_RETURN(InodeId inode, vfs_.Lookup(r.path));
  if (!existed) {
    // Phase-2 bookkeeping: register the file, seed the attribute cache, journal it.
    auto doc = registry_.Add(inode, r.path);
    if (doc.ok()) {
      journal_.Append(JournalOp::kFileRegistered, doc.value(), r.path);
      // The new doc entered every enclosing scope; dependents fold it into their next
      // delta (it stays unindexed until reindex, exactly the deferred semantics).
      engine_->NoteDocChanged(doc.value());
    }
    const Inode* node = vfs_.FindInode(inode);
    if (node != nullptr) {
      attr_cache_.Put(inode, vfs_.StatOf(*node));
    }
    NoteContentMutation();
  } else if ((flags & kOpenTruncate) != 0) {
    if (auto doc = registry_.FindByInode(inode); doc.ok()) {
      (void)registry_.MarkDirty(doc.value());
    }
    attr_cache_.Invalidate(inode);
    journal_.Append(JournalOp::kFileTruncated, 0, r.path);
    NoteContentMutation();
  }
  return processes_[current_process_].Allocate(HacOpenFile{&vfs_, backend_fd, inode, r.path});
}

Result<void> HacFileSystem::Close(Fd fd) {
  HAC_ASSIGN_OR_RETURN(HacOpenFile of, processes_[current_process_].Release(fd));
  return of.backend->Close(of.backend_fd);
}

Result<size_t> HacFileSystem::Read(Fd fd, void* buf, size_t n) {
  HAC_ASSIGN_OR_RETURN(HacOpenFile * of, processes_[current_process_].Get(fd));
  HAC_ASSIGN_OR_RETURN(size_t got, of->backend->Read(of->backend_fd, buf, n));
  ++of->reads;
  return got;
}

Result<size_t> HacFileSystem::Write(Fd fd, const void* buf, size_t n) {
  HAC_ASSIGN_OR_RETURN(HacOpenFile * of, processes_[current_process_].Get(fd));
  HAC_ASSIGN_OR_RETURN(size_t put, of->backend->Write(of->backend_fd, buf, n));
  ++of->writes;
  if (of->inode != kInvalidInode) {
    if (auto doc = registry_.FindByInode(of->inode); doc.ok()) {
      (void)registry_.MarkDirty(doc.value());
    }
    attr_cache_.Invalidate(of->inode);
    // inode valid ⇒ local file ⇒ the backend is our VFS: the post-write offset minus
    // the byte count is where this write landed. Journaled with the payload so the
    // WAL can replay it (appends land at the same place because replay preserves
    // operation order).
    auto pos = vfs_.Tell(of->backend_fd);
    const uint64_t at = pos.ok() && pos.value() >= put ? pos.value() - put : 0;
    journal_.Append(JournalOp::kFileWritten, at, of->path,
                    std::string_view(static_cast<const char*>(buf), put));
    NoteContentMutation();
  }
  return put;
}

Result<uint64_t> HacFileSystem::Seek(Fd fd, uint64_t offset) {
  HAC_ASSIGN_OR_RETURN(HacOpenFile * of, processes_[current_process_].Get(fd));
  return of->backend->Seek(of->backend_fd, offset);
}

// ---------------------------------------------------------------------------
// Namespace mutations
// ---------------------------------------------------------------------------

Result<void> HacFileSystem::ProhibitTrackedLink(DirMetadata* m, const std::string& dir_path,
                                                const std::string& name, bool unlink_vfs) {
  if (unlink_vfs) {
    (void)vfs_.Unlink(JoinPath(dir_path == "/" ? "" : dir_path, name));
  }
  auto removed = m->links.RemoveLink(name);
  journal_.Append(JournalOp::kLinkRemoved, m->uid, name);
  if (!removed.ok() || removed.value().doc == kInvalidDocId) {
    return OkResult();  // foreign link: nothing to prohibit, no scope change
  }
  m->links.Prohibit(removed.value().doc);
  Bitmap delta;
  delta.Set(removed.value().doc);
  return engine_->NotifyScopeChanged(m->uid, &delta);
}

Result<void> HacFileSystem::Unlink(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return r.fs->Unlink(r.path);
  }
  HAC_ASSIGN_OR_RETURN(Stat st, vfs_.LstatPath(r.path));
  std::string parent_path = DirName(r.path);
  std::string name = BaseName(r.path);

  if (st.type == NodeType::kSymlink) {
    HAC_RETURN_IF_ERROR(vfs_.Unlink(r.path));
    journal_.Append(JournalOp::kUnlinked, 0, r.path);
    auto meta = MetaOfPath(parent_path);
    if (meta.ok() && meta.value()->links.Find(name) != nullptr) {
      // Explicit user deletion: the link becomes prohibited and must never be
      // silently re-added (section 2.3). Shared with the Prohibit() API.
      return ProhibitTrackedLink(meta.value(), parent_path, name,
                                 /*unlink_vfs=*/false);
    }
    return OkResult();
  }

  // Regular file: deferred data consistency — links elsewhere dangle until reindex.
  HAC_RETURN_IF_ERROR(vfs_.Unlink(r.path));
  journal_.Append(JournalOp::kUnlinked, 0, r.path);
  if (auto doc = registry_.FindByInode(st.inode); doc.ok()) {
    (void)registry_.Deactivate(doc.value());
    journal_.Append(JournalOp::kFileDeactivated, doc.value(), r.path);
    engine_->NoteDocChanged(doc.value());  // left every scope it was in
  }
  attr_cache_.Invalidate(st.inode);
  NoteContentMutation();
  return OkResult();
}

Result<void> HacFileSystem::Rename(const std::string& from, const std::string& to) {
  std::string norm_from = NormalizePath(from);
  for (const SyntacticMount& m : mounts_.syntactic()) {
    if (m.mount_path == norm_from) {
      return Error(ErrorCode::kBusy, norm_from + " is a mount point");
    }
  }
  HAC_ASSIGN_OR_RETURN(Routed src, Route(from));
  HAC_ASSIGN_OR_RETURN(Routed dst, Route(to));
  if (src.fs != dst.fs) {
    return Error(ErrorCode::kCrossDevice, "rename across a mount boundary");
  }
  if (!src.local) {
    return src.fs->Rename(src.path, dst.path);
  }
  HAC_ASSIGN_OR_RETURN(Stat st, vfs_.LstatPath(src.path));

  if (st.type == NodeType::kSymlink) {
    // Moving a query-result link: leaving a directory prohibits it there; arriving in a
    // directory makes it a permanent, user-chosen link (section 2.2: results of queries
    // can be moved like regular files).
    std::string src_parent = DirName(src.path);
    std::string dst_parent = DirName(dst.path);
    std::string src_name = BaseName(src.path);
    std::string dst_name = BaseName(dst.path);
    HAC_RETURN_IF_ERROR(vfs_.Rename(src.path, dst.path));
    DocId doc = kInvalidDocId;
    if (auto meta = MetaOfPath(src_parent); meta.ok()) {
      if (meta.value()->links.Find(src_name) != nullptr) {
        auto removed = meta.value()->links.RemoveLink(src_name);
        if (removed.ok()) {
          doc = removed.value().doc;
        }
        if (src_parent != dst_parent && doc != kInvalidDocId) {
          meta.value()->links.Prohibit(doc);
        }
        journal_.Append(JournalOp::kLinkRemoved, meta.value()->uid, src_name);
        Bitmap delta;
        if (doc != kInvalidDocId) {
          delta.Set(doc);
        }
        HAC_RETURN_IF_ERROR(engine_->NotifyScopeChanged(meta.value()->uid, &delta));
      }
    }
    if (auto meta = MetaOfPath(dst_parent); meta.ok()) {
      DirMetadata* m = meta.value();
      if (doc != kInvalidDocId && !m->links.HasDoc(doc)) {
        m->links.Unprohibit(doc);
        HAC_RETURN_IF_ERROR(m->links.AddLink(dst_name, doc, LinkClass::kPermanent));
      } else {
        HAC_RETURN_IF_ERROR(m->links.AddForeignLink(dst_name));
      }
      journal_.Append(JournalOp::kLinkAdded, m->uid, dst_name);
      Bitmap delta;
      if (doc != kInvalidDocId) {
        delta.Set(doc);
      }
      HAC_RETURN_IF_ERROR(engine_->NotifyScopeChanged(m->uid, &delta));
    }
    journal_.Append(JournalOp::kRename, 0, src.path, dst.path);
    return OkResult();
  }

  if (st.type == NodeType::kFile) {
    // The replaced target (if any) disappears.
    auto old_target = vfs_.LstatPath(dst.path);
    HAC_RETURN_IF_ERROR(vfs_.Rename(src.path, dst.path));
    if (old_target.ok() && old_target.value().type == NodeType::kFile) {
      if (auto doc = registry_.FindByInode(old_target.value().inode); doc.ok()) {
        (void)registry_.Deactivate(doc.value());
        journal_.Append(JournalOp::kFileDeactivated, doc.value(), dst.path);
        engine_->NoteDocChanged(doc.value());
      }
      attr_cache_.Invalidate(old_target.value().inode);
    }
    if (auto doc = registry_.FindByInode(st.inode); doc.ok()) {
      (void)registry_.SetPath(doc.value(), dst.path);
      // Membership in dir()-referenced scopes and link-target paths both shift with
      // the path; the log puts the doc into every dependent's next delta.
      engine_->NoteDocChanged(doc.value());
    }
    journal_.Append(JournalOp::kRename, 0, src.path, dst.path);
    // Scope effects of a file move are data consistency: settled at the next reindex
    // (the paper's "moved to archive" example).
    NoteContentMutation();
    return OkResult();
  }

  // Directory move. UIDs are stable, so queries referencing the directory survive; only
  // the moved directory's parent dependency changes.
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(src.path));
  HAC_RETURN_IF_ERROR(vfs_.Rename(src.path, dst.path));
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfUid(uid));
  auto deps = ComputeDeps(uid, dst.path, meta->query.get());
  Result<void> dep_update =
      deps.ok() ? graph_.SetDependencies(uid, deps.value()) : Result<void>(deps.error());
  if (!dep_update.ok()) {
    (void)vfs_.Rename(dst.path, src.path);
    return dep_update.error();
  }
  // Every file in the moved subtree changes which scopes it belongs to; capture the
  // set before the registry paths move.
  Bitmap moved_docs = registry_.FilesWithin(src.path);
  uid_map_.RenameSubtree(src.path, dst.path);
  registry_.RenameSubtree(src.path, dst.path);
  mounts_.RenameSubtree(src.path, dst.path);
  journal_.Append(JournalOp::kRename, uid, src.path, dst.path);
  moved_docs.ForEach([this](DocId doc) { engine_->NoteDocChanged(doc); });
  // Immediate scope consistency: the directory's scope (and its descendants') changed.
  return engine_->NotifyScopeChanged(uid);
}

Result<void> HacFileSystem::Symlink(const std::string& target, const std::string& link_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(link_path));
  if (!r.local) {
    return r.fs->Symlink(target, r.path);
  }
  HAC_RETURN_IF_ERROR(vfs_.Symlink(target, r.path));
  std::string parent_path = DirName(r.path);
  std::string name = BaseName(r.path);
  auto meta = MetaOfPath(parent_path);
  if (!meta.ok()) {
    journal_.Append(JournalOp::kSymlinked, 0, r.path, target);
    return OkResult();  // parent untracked (shouldn't happen for local dirs)
  }
  DirMetadata* m = meta.value();
  // Resolve the target to a registered document if possible.
  std::string abs_target = target;
  if (abs_target.empty() || abs_target[0] != '/') {
    abs_target = JoinPath(parent_path == "/" ? "" : parent_path, target);
  }
  abs_target = NormalizePath(abs_target);
  auto doc = registry_.FindByPath(abs_target);
  Bitmap delta;
  if (doc.ok() && !m->links.HasDoc(doc.value())) {
    // An explicit user action: re-adding a prohibited file un-prohibits it.
    m->links.Unprohibit(doc.value());
    HAC_RETURN_IF_ERROR(m->links.AddLink(name, doc.value(), LinkClass::kPermanent));
    delta.Set(doc.value());
  } else if (doc.ok()) {
    // The file is already linked here; the user's explicit symlink pins it. Promote the
    // existing link to permanent and track the new entry as a plain alias.
    HAC_ASSIGN_OR_RETURN(std::string existing, m->links.NameOf(doc.value()));
    HAC_RETURN_IF_ERROR(m->links.Promote(existing));
    HAC_RETURN_IF_ERROR(m->links.AddForeignLink(name));
    delta.Set(doc.value());
  } else {
    HAC_RETURN_IF_ERROR(m->links.AddForeignLink(name));
  }
  journal_.Append(JournalOp::kLinkAdded, m->uid, name, abs_target);
  // The replayable record keeps the target verbatim (possibly relative): replay must
  // recreate the identical symlink, not its resolution.
  journal_.Append(JournalOp::kSymlinked, m->uid, r.path, target);
  return engine_->NotifyScopeChanged(m->uid, &delta);
}

Result<std::string> HacFileSystem::ReadLink(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  return r.fs->ReadLink(r.path);
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

Result<Stat> HacFileSystem::StatPath(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return r.fs->StatPath(r.path);
  }
  // Phase-3 path: resolve, then consult the shared attribute cache.
  HAC_ASSIGN_OR_RETURN(InodeId inode, vfs_.Lookup(r.path, /*follow_final=*/true));
  if (auto cached = attr_cache_.Get(inode); cached.has_value()) {
    ++stats_.attr_cache_hits;
    AttrCacheHitCounter().Inc();
    return *cached;
  }
  ++stats_.attr_cache_misses;
  AttrCacheMissCounter().Inc();
  HAC_ASSIGN_OR_RETURN(Stat st, vfs_.StatPath(r.path));
  attr_cache_.Put(inode, st);
  return st;
}

Result<Stat> HacFileSystem::LstatPath(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return r.fs->LstatPath(r.path);
  }
  return vfs_.LstatPath(r.path);
}

// ---------------------------------------------------------------------------
// Processes & stats
// ---------------------------------------------------------------------------

ProcessId HacFileSystem::CreateProcess() {
  processes_.emplace_back();
  return static_cast<ProcessId>(processes_.size() - 1);
}

Result<void> HacFileSystem::SetCurrentProcess(ProcessId pid) {
  if (pid >= processes_.size()) {
    return Error(ErrorCode::kInvalidArgument, "unknown process " + std::to_string(pid));
  }
  current_process_ = pid;
  return OkResult();
}

StatsSnapshot HacFileSystem::Stats() const {
  StatsSnapshot s = stats_;
  s.attr_cache_hits = attr_cache_.hits();
  s.attr_cache_misses = attr_cache_.misses();
  s.index = index_->Stats();
  s.vfs = vfs_.stats();
  return s;
}

Result<Bitmap> HacFileSystem::ScopeOf(const std::string& dir_path) {
  std::string norm = NormalizePath(dir_path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + dir_path);
  }
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(norm));
  return ScopeOfUid(uid);
}

Result<Bitmap> HacFileSystem::DirectoryResultOf(const std::string& dir_path) {
  std::string norm = NormalizePath(dir_path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + dir_path);
  }
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(norm));
  return DirContentsOfUid(uid);
}

Result<std::string> HacFileSystem::PathOfDoc(DocId doc) const {
  const FileRecord* rec = registry_.Get(doc);
  if (rec == nullptr) {
    return Error(ErrorCode::kNotFound, "doc " + std::to_string(doc));
  }
  return rec->path;
}

size_t HacFileSystem::MetadataSizeBytes() const {
  // Resident HAC structures. The append-only journal is excluded: it is this
  // implementation's stand-in for the paper's synchronous metadata writes and is
  // reported separately (journal().SizeBytes()); a production system would checkpoint
  // and truncate it.
  size_t total = uid_map_.SizeBytes() + graph_.SizeBytes() + registry_.SizeBytes() +
                 mounts_.SizeBytes();
  for (const auto& [uid, meta] : metadata_) {
    total += meta.SizeBytes();
  }
  return total;
}

size_t HacFileSystem::SharedMemoryBytesPerProcess() const {
  size_t fd_total = 0;
  for (const HacFdTable& t : processes_) {
    fd_total += t.SizeBytes();
  }
  return attr_cache_.SizeBytes() / std::max<size_t>(1, processes_.size()) +
         fd_total / std::max<size_t>(1, processes_.size());
}

}  // namespace hac
