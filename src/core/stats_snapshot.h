// One unified counter surface for the whole stack. HacFileSystem::Stats() returns a
// StatsSnapshot that flattens the facade's own counters and embeds the component views
// (the index's CbaStats, the VFS's FsStats) that used to require three separate calls.
//
// The facade counters are std::atomic so the live instance inside HacFileSystem can be
// bumped from concurrent service workers and snapshotted from a monitoring thread
// without a data race (the hacd service layer calls Stats() under its shared lock).
// Field names are unchanged; ++ maps onto an atomic RMW, plain reads onto loads, and
// copying takes a relaxed field-by-field snapshot — so a StatsSnapshot returned by
// Stats() still behaves like the plain value type it always was.
#ifndef HAC_CORE_STATS_SNAPSHOT_H_
#define HAC_CORE_STATS_SNAPSHOT_H_

#include <atomic>
#include <cstdint>

#include "src/index/cba.h"
#include "src/vfs/fs_stats.h"

namespace hac {

struct StatsSnapshot {
  // --- scope-consistency engine ---
  std::atomic<uint64_t> query_evaluations = 0;   // full query evaluations (cold cache, eager mode)
  std::atomic<uint64_t> delta_evaluations = 0;   // incremental re-evaluations over a delta bitmap
  std::atomic<uint64_t> scope_propagations = 0;  // directories actually recomputed by passes
  std::atomic<uint64_t> short_circuit_propagations = 0;  // visits skipped: nothing upstream changed
  std::atomic<uint64_t> batch_flushes = 0;       // batched passes run (EndBatch or a forced flush)
  std::atomic<uint64_t> batched_mutations = 0;   // mutations coalesced inside Begin/EndBatch
  std::atomic<uint64_t> transient_links_added = 0;
  std::atomic<uint64_t> transient_links_removed = 0;

  // --- deferred data consistency ---
  std::atomic<uint64_t> docs_indexed = 0;
  std::atomic<uint64_t> docs_purged = 0;
  std::atomic<uint64_t> auto_reindexes = 0;

  // --- remote semantic mounts ---
  std::atomic<uint64_t> remote_searches = 0;
  std::atomic<uint64_t> remote_imports = 0;

  // --- shared attribute cache ---
  std::atomic<uint64_t> attr_cache_hits = 0;
  std::atomic<uint64_t> attr_cache_misses = 0;

  // --- component views ---
  CbaStats index;  // content-based access mechanism (documents, terms, postings)
  FsStats vfs;     // underlying VFS call counts

  StatsSnapshot() = default;
  StatsSnapshot(const StatsSnapshot& other) { CopyFrom(other); }
  StatsSnapshot& operator=(const StatsSnapshot& other) {
    CopyFrom(other);
    return *this;
  }

 private:
  void CopyFrom(const StatsSnapshot& other) {
    query_evaluations = other.query_evaluations.load(std::memory_order_relaxed);
    delta_evaluations = other.delta_evaluations.load(std::memory_order_relaxed);
    scope_propagations = other.scope_propagations.load(std::memory_order_relaxed);
    short_circuit_propagations =
        other.short_circuit_propagations.load(std::memory_order_relaxed);
    batch_flushes = other.batch_flushes.load(std::memory_order_relaxed);
    batched_mutations = other.batched_mutations.load(std::memory_order_relaxed);
    transient_links_added = other.transient_links_added.load(std::memory_order_relaxed);
    transient_links_removed =
        other.transient_links_removed.load(std::memory_order_relaxed);
    docs_indexed = other.docs_indexed.load(std::memory_order_relaxed);
    docs_purged = other.docs_purged.load(std::memory_order_relaxed);
    auto_reindexes = other.auto_reindexes.load(std::memory_order_relaxed);
    remote_searches = other.remote_searches.load(std::memory_order_relaxed);
    remote_imports = other.remote_imports.load(std::memory_order_relaxed);
    attr_cache_hits = other.attr_cache_hits.load(std::memory_order_relaxed);
    attr_cache_misses = other.attr_cache_misses.load(std::memory_order_relaxed);
    index = other.index;
    vfs = other.vfs;
  }
};

}  // namespace hac

#endif  // HAC_CORE_STATS_SNAPSHOT_H_
