// One unified counter surface for the whole stack. HacFileSystem::Stats() returns a
// StatsSnapshot that flattens the facade's own counters and embeds the component views
// (the index's CbaStats, the VFS's FsStats) that used to require three separate calls.
//
// `HacStats` remains as a deprecated alias for one release so existing callers keep
// compiling; new code should say StatsSnapshot.
#ifndef HAC_CORE_STATS_SNAPSHOT_H_
#define HAC_CORE_STATS_SNAPSHOT_H_

#include <cstdint>

#include "src/index/cba.h"
#include "src/vfs/fs_stats.h"

namespace hac {

struct StatsSnapshot {
  // --- scope-consistency engine ---
  uint64_t query_evaluations = 0;   // full query evaluations (cold cache, eager mode)
  uint64_t delta_evaluations = 0;   // incremental re-evaluations over a delta bitmap
  uint64_t scope_propagations = 0;  // directories actually recomputed by passes
  uint64_t short_circuit_propagations = 0;  // visits skipped: nothing upstream changed
  uint64_t batch_flushes = 0;       // batched passes run (EndBatch or a forced flush)
  uint64_t batched_mutations = 0;   // mutations coalesced inside Begin/EndBatch
  uint64_t transient_links_added = 0;
  uint64_t transient_links_removed = 0;

  // --- deferred data consistency ---
  uint64_t docs_indexed = 0;
  uint64_t docs_purged = 0;
  uint64_t auto_reindexes = 0;

  // --- remote semantic mounts ---
  uint64_t remote_searches = 0;
  uint64_t remote_imports = 0;

  // --- shared attribute cache ---
  uint64_t attr_cache_hits = 0;
  uint64_t attr_cache_misses = 0;

  // --- component views ---
  CbaStats index;  // content-based access mechanism (documents, terms, postings)
  FsStats vfs;     // underlying VFS call counts
};

// Deprecated: kept for one release; use StatsSnapshot.
using HacStats = StatsSnapshot;

}  // namespace hac

#endif  // HAC_CORE_STATS_SNAPSHOT_H_
