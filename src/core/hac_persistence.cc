// Whole-state persistence for HacFileSystem (see the SaveState/LoadState contract in
// hac_file_system.h).
//
// Durable state = VFS image + registry records + per-directory {query, link records,
// prohibited set}. Everything else is derived (UID map, dependency graph, index) or
// session-local (mounts, caches, descriptor tables, journal). The load path finishes
// with a full Reindex(), which both rebuilds the index and re-verifies scope
// consistency against the restored link tables.
#include <algorithm>

#include "src/core/hac_file_system.h"
#include "src/support/serializer.h"
#include "src/vfs/path.h"

namespace hac {

namespace {
constexpr uint32_t kStateMagic = 0x48414353;  // "HACS"
// v2 appends the index snapshot so loads need not re-tokenize every file.
constexpr uint32_t kStateVersion = 2;
}  // namespace

class HacStateCodec {
 public:
  static std::vector<uint8_t> Save(const HacFileSystem& fs) {
    // Batched mutations must reach the link tables before they are serialized.
    (void)fs.engine_->Flush();
    ByteWriter w;
    w.PutU32(kStateMagic);
    w.PutU32(kStateVersion);

    // 1. The VFS image.
    std::vector<uint8_t> vfs_image = fs.vfs_.SaveImage();
    w.PutVarint(vfs_image.size());
    w.PutBytes(vfs_image.data(), vfs_image.size());

    // 2. Registry records, in id order.
    w.PutVarint(fs.registry_.TotalRecords());
    for (DocId id = 0; id < fs.registry_.TotalRecords(); ++id) {
      const FileRecord* rec = fs.registry_.Get(id);
      w.PutU64(rec->inode);
      w.PutString(rec->path);
      w.PutU8(static_cast<uint8_t>((rec->alive ? 1 : 0) | (rec->remote ? 2 : 0) |
                                   (rec->dirty ? 4 : 0)));
      w.PutString(rec->remote_key);
    }

    // 3. Per-directory state, parents before children (lexicographic does that).
    std::vector<std::string> paths;
    for (const auto& [uid, meta] : fs.metadata_) {
      auto path = fs.uid_map_.PathOf(uid);
      if (path.ok()) {
        paths.push_back(path.value());
      }
    }
    std::sort(paths.begin(), paths.end());
    w.PutVarint(paths.size());
    std::function<std::string(DirUid)> uid_to_path = [&fs](DirUid uid) {
      auto p = fs.uid_map_.PathOf(uid);
      return p.ok() ? p.value() : "#" + std::to_string(uid);
    };
    for (const std::string& path : paths) {
      auto uid = fs.uid_map_.UidOf(path);
      const DirMetadata& meta = fs.metadata_.at(uid.value());
      w.PutString(path);
      // Query in rendered form: current paths inside dir() references.
      w.PutString(meta.query != nullptr ? meta.query->ToString(&uid_to_path) : "");
      // Link records.
      w.PutVarint(meta.links.links().size());
      for (const auto& [name, rec] : meta.links.links()) {
        w.PutString(name);
        w.PutU32(rec.doc);
        w.PutU8(static_cast<uint8_t>(rec.cls));
      }
      // Prohibited docs.
      std::vector<uint32_t> prohibited = meta.links.prohibited().ToIds();
      w.PutVarint(prohibited.size());
      for (uint32_t doc : prohibited) {
        w.PutU32(doc);
      }
    }

    // 4. The content index, so a load avoids re-tokenizing every clean document.
    std::vector<uint8_t> index_image = fs.index_->SaveSnapshot();
    w.PutVarint(index_image.size());
    w.PutBytes(index_image.data(), index_image.size());
    return w.TakeBuffer();
  }

  static Result<std::unique_ptr<HacFileSystem>> Load(const std::vector<uint8_t>& image,
                                                     HacOptions options) {
    ByteReader r(image);
    HAC_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
    if (magic != kStateMagic) {
      return Error(ErrorCode::kCorrupt, "bad state magic");
    }
    HAC_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    if (version != kStateVersion) {
      return Error(ErrorCode::kCorrupt, "unsupported state version");
    }

    auto fs = std::make_unique<HacFileSystem>(options);

    // 1. VFS.
    HAC_ASSIGN_OR_RETURN(uint64_t vfs_len, r.GetVarint());
    std::vector<uint8_t> vfs_image(vfs_len);
    HAC_RETURN_IF_ERROR(r.GetBytes(vfs_image.data(), vfs_len));
    HAC_ASSIGN_OR_RETURN(FileSystem vfs, FileSystem::LoadImage(vfs_image));
    fs->vfs_ = std::move(vfs);

    // 2. Registry.
    HAC_ASSIGN_OR_RETURN(uint64_t n_records, r.GetVarint());
    for (DocId id = 0; id < n_records; ++id) {
      FileRecord rec;
      rec.id = id;
      HAC_ASSIGN_OR_RETURN(rec.inode, r.GetU64());
      HAC_ASSIGN_OR_RETURN(rec.path, r.GetString());
      HAC_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
      rec.alive = (flags & 1) != 0;
      rec.remote = (flags & 2) != 0;
      rec.dirty = (flags & 4) != 0;
      HAC_ASSIGN_OR_RETURN(rec.remote_key, r.GetString());
      HAC_RETURN_IF_ERROR(fs->registry_.RestoreRecord(rec));
    }

    // 3. Directories: structural pass (UID map, graph nodes, metadata shells).
    HAC_ASSIGN_OR_RETURN(uint64_t n_dirs, r.GetVarint());
    struct SavedDir {
      std::string path;
      std::string query;
      std::vector<std::tuple<std::string, DocId, uint8_t>> links;
      std::vector<DocId> prohibited;
    };
    std::vector<SavedDir> saved(n_dirs);
    for (SavedDir& dir : saved) {
      HAC_ASSIGN_OR_RETURN(dir.path, r.GetString());
      HAC_ASSIGN_OR_RETURN(dir.query, r.GetString());
      HAC_ASSIGN_OR_RETURN(uint64_t n_links, r.GetVarint());
      for (uint64_t i = 0; i < n_links; ++i) {
        HAC_ASSIGN_OR_RETURN(std::string name, r.GetString());
        HAC_ASSIGN_OR_RETURN(uint32_t doc, r.GetU32());
        HAC_ASSIGN_OR_RETURN(uint8_t cls, r.GetU8());
        if (cls > static_cast<uint8_t>(LinkClass::kTransient)) {
          return Error(ErrorCode::kCorrupt, "bad link class");
        }
        dir.links.emplace_back(std::move(name), doc, cls);
      }
      HAC_ASSIGN_OR_RETURN(uint64_t n_prohibited, r.GetVarint());
      for (uint64_t i = 0; i < n_prohibited; ++i) {
        HAC_ASSIGN_OR_RETURN(uint32_t doc, r.GetU32());
        dir.prohibited.push_back(doc);
      }
    }
    for (const SavedDir& dir : saved) {
      if (dir.path == "/") {
        continue;  // the constructor made the root already
      }
      HAC_RETURN_IF_ERROR(fs->RegisterDirectory(dir.path));
    }

    // 4. Queries (binding dir() references against the rebuilt UID map); propagation
    // is suppressed — the authoritative link sets come from the image.
    fs->engine_->Suspend(true);
    for (const SavedDir& dir : saved) {
      if (!dir.query.empty()) {
        Result<void> set = fs->SetQuery(dir.path, dir.query);
        if (!set.ok()) {
          fs->engine_->Suspend(false);
          return Error(ErrorCode::kCorrupt,
                       "query of " + dir.path + ": " + set.error().ToString());
        }
      }
    }
    fs->engine_->Suspend(false);

    // 5. Link tables.
    for (const SavedDir& dir : saved) {
      HAC_ASSIGN_OR_RETURN(DirUid uid, fs->uid_map_.UidOf(dir.path));
      DirMetadata& meta = fs->metadata_.at(uid);
      for (const auto& [name, doc, cls] : dir.links) {
        if (doc == kInvalidDocId) {
          HAC_RETURN_IF_ERROR(meta.links.AddForeignLink(name));
        } else if (doc >= fs->registry_.TotalRecords()) {
          return Error(ErrorCode::kCorrupt, "link to unknown doc in " + dir.path);
        } else {
          HAC_RETURN_IF_ERROR(
              meta.links.AddLink(name, doc, static_cast<LinkClass>(cls)));
        }
      }
      for (DocId doc : dir.prohibited) {
        if (doc >= fs->registry_.TotalRecords()) {
          return Error(ErrorCode::kCorrupt, "prohibition of unknown doc in " + dir.path);
        }
        meta.links.Prohibit(doc);
      }
    }

    // 6. Restore the index snapshot, then settle consistency: Reindex() flushes only
    // the records that were dirty at save time and re-derives every transient set.
    HAC_ASSIGN_OR_RETURN(uint64_t index_len, r.GetVarint());
    std::vector<uint8_t> index_image(index_len);
    HAC_RETURN_IF_ERROR(r.GetBytes(index_image.data(), index_len));
    HAC_RETURN_IF_ERROR(fs->index_->LoadSnapshot(index_image));
    HAC_RETURN_IF_ERROR(fs->Reindex());
    return fs;
  }
};

std::vector<uint8_t> HacFileSystem::SaveState() const { return HacStateCodec::Save(*this); }

Result<std::unique_ptr<HacFileSystem>> HacFileSystem::LoadState(
    const std::vector<uint8_t>& image, HacOptions options) {
  return HacStateCodec::Load(image, options);
}

}  // namespace hac
