// ConsistencyEngine: the scope-consistency subsystem (sections 2.3-2.5), extracted
// from the HacFileSystem facade so the propagation strategy is swappable.
//
// Two strategies implement the same invariant — for every semantic directory sd with
// parent p:
//
//   transient(sd) == Eval(query(sd), scope(p)) − permanent(sd) − prohibited(sd)
//
//   * kEager (the paper's prototype): every mutation immediately re-evaluates the
//     affected directory and everything downstream of it in topological order, each
//     visit running the full query from scratch.
//
//   * kIncremental (default): each directory carries a scope epoch and a cached raw
//     evaluation (DirEvalCache). A mutation propagates as a *delta bitmap* — the docs
//     whose membership may have changed — and dependents re-evaluate the query only
//     over that delta:  raw' = (raw ∖ Δ) ∪ Eval(query, scope' ∩ Δ).  This is exact
//     because the evaluator is pointwise per document (NOT is interpreted relative to
//     the supplied scope, one doc at a time). A visit whose upstream epochs, doc log
//     and in-pass deltas are all unchanged short-circuits without touching the index.
//
// Mutations can be coalesced: BeginBatch()/EndBatch() (or the RAII BatchScope on the
// facade) defer propagation and run ONE multi-source topological pass over the union
// of all pending origins at EndBatch. Readers that observe link sets (ReadDir, Search,
// SSync, ...) force a flush first, so batching is never visible to them.
//
// The engine keeps a generation-tagged log of document-level changes (files created,
// deleted, renamed, re-indexed) and a per-directory watermark, so a directory visited
// after any interleaving of passes still sees exactly the docs that changed since its
// own last visit. The log is compacted once every cached directory has caught up.
//
// Wavefront parallelism (incremental engine only): an incremental pass walks the
// affected subgraph level by level (DependencyGraph::AffectedInLevels). Directories
// sharing a level have no dependency edges between them, so their visits read disjoint
// upstream state; the pass splits each visit into a read-only PLAN (delta assembly +
// query evaluation — the expensive part) fanned out over a ThreadPool, and a serial
// APPLY (symlink churn, epoch/cache updates) executed in ascending-uid order behind a
// hard barrier. Serial and parallel passes iterate the same flattened level schedule
// and apply in the same order, so the resulting state is byte-identical. Passes fall
// back to fully-serial visits while semantic mounts exist (imports mutate shared
// metadata mid-pass) or when SetParallelism was never called.
#ifndef HAC_CORE_CONSISTENCY_ENGINE_H_
#define HAC_CORE_CONSISTENCY_ENGINE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/index/cba.h"    // DocId
#include "src/index/query.h"  // DirUid
#include "src/support/bitmap.h"
#include "src/support/result.h"

namespace hac {

class HacFileSystem;
class ThreadPool;

enum class ConsistencyMode {
  kEager,        // paper-faithful: full re-evaluation on every mutation
  kIncremental,  // epoch-gated delta propagation with batching
};

class ConsistencyEngine {
 public:
  ConsistencyEngine(HacFileSystem* host, ConsistencyMode mode)
      : host_(host), mode_(mode) {}

  ConsistencyMode mode() const { return mode_; }

  // --- mutation notifications ---

  // The contents of `uid` changed (a link was added/removed/reclassified, its query
  // changed, or it moved). `contents_delta`, when supplied, is the set of docs whose
  // link status in `uid` changed; it seeds the delta that dependents re-evaluate over.
  // Outside a batch this runs a propagation pass immediately; inside one it only
  // records the origin.
  Result<void> NotifyScopeChanged(DirUid uid, const Bitmap* contents_delta = nullptr);

  // A document-level event: file created, deleted, renamed, indexed or purged. Logged
  // so later visits include the doc in their delta; never triggers propagation itself
  // (data consistency stays deferred, section 2.4).
  void NoteDocChanged(DocId doc);

  // Drop `uid`'s cached evaluation (its query changed or was cleared).
  void InvalidateCache(DirUid uid);

  // --- passes ---

  // ssync semantics: re-evaluate `uid` and everything downstream, folding in any
  // pending batched origins.
  Result<void> SyncFrom(DirUid uid);

  // Reindex semantics: one pass over the full dependency DAG.
  Result<void> PropagateAll();

  // --- batching ---

  void BeginBatch() { ++batch_depth_; }
  // Closes the innermost batch; the outermost EndBatch flushes. Unbalanced calls fail.
  Result<void> EndBatch();
  bool InBatch() const { return batch_depth_ > 0; }
  // Runs the pending batched pass, if any. Readers call this; safe to call anytime.
  Result<void> Flush();

  bool InPass() const { return in_pass_; }

  // Persistence load replays mutations with propagation suppressed, then runs one
  // global pass.
  void Suspend(bool on) { suspended_ = on; }

  size_t PendingOriginCount() const { return pending_origins_.size(); }

  // --- wavefront parallelism ---

  // Run incremental passes with up to `width` concurrent planners (the pass-running
  // thread plus helpers borrowed from `pool`). width <= 1 or a null pool keeps every
  // pass serial. The engine does not own the pool; the caller must keep it alive for
  // the engine's lifetime (or call SetParallelism(nullptr, 1) first).
  void SetParallelism(ThreadPool* pool, size_t width) {
    pool_ = (width > 1) ? pool : nullptr;
    parallel_width_ = (pool_ != nullptr) ? width : 1;
  }
  ThreadPool* parallel_pool() const { return pool_; }
  size_t parallel_width() const { return parallel_width_; }

 private:
  // One topological pass. `origins` maps each source directory to the contents delta
  // its mutation produced. `full` visits the whole DAG instead of the affected set.
  Result<void> RunPass(std::map<DirUid, Bitmap> origins, bool full);

  // Paper-faithful visit: full evaluation, unconditional link refresh.
  Result<void> VisitEager(DirUid uid);

  // Epoch-gated visit: short-circuit, or splice Eval(query, scope' ∩ Δ) into the
  // cached raw result. `contents_delta` accumulates, per pass, how each visited
  // directory's contents changed, so dir() dependents re-evaluate only that.
  // Implemented as PlanVisit followed immediately by ApplyVisit (plus the serial-only
  // remote-import detour).
  Result<void> VisitIncremental(DirUid uid, const std::map<DirUid, Bitmap>& origins,
                                std::unordered_map<DirUid, Bitmap>* contents_delta);

  // The outcome of planning one incremental visit. Everything a concurrent planner
  // computes; nothing in it aliases mutable engine/host state.
  struct VisitPlan {
    enum class Action {
      kSkip,          // directory vanished mid-batch, or planning failed (see `error`)
      kSyntactic,     // scope-transparent bookkeeping only
      kShortCircuit,  // nothing upstream changed since the last visit
      kEvaluate,      // raw/delta computed; materialize + cache update pending
      kNeedsImport,   // parent is a semantic mount: serial import, then re-plan
    };
    DirUid uid = 0;
    Action action = Action::kSkip;
    Result<void> error;         // non-ok only with kSkip
    std::string path;
    uint64_t dep_epoch_sum = 0;
    bool bump_epoch = false;    // kSyntactic: upstream actually moved
    bool full_eval = false;     // kEvaluate: raw is a from-scratch evaluation
    Bitmap raw;                 // kEvaluate: post-splice raw query result
    Bitmap delta;               // kEvaluate, !full_eval: the Δ (also refresh filter)
    Bitmap parent_scope;        // kEvaluate: scope the result was evaluated against
  };

  // Read-only planning: delta assembly and index evaluation, no mutation of host or
  // engine state — safe to run concurrently for directories in the same wavefront
  // level. `after_import` re-plans a kNeedsImport visit (no mount detour, no
  // short-circuit; each visit under a mount re-imports).
  VisitPlan PlanVisit(DirUid uid, const std::map<DirUid, Bitmap>& origins,
                      const std::unordered_map<DirUid, Bitmap>& contents_delta,
                      bool after_import);

  // Serial completion of a plan: stats, symlink churn, epoch bumps, eval-cache and
  // contents_delta updates. Called in ascending-uid order within a level.
  Result<void> ApplyVisit(VisitPlan* plan,
                          std::unordered_map<DirUid, Bitmap>* contents_delta);

  // Shared tail of both visits: subtract self-links and user edits from `raw`,
  // materialize the transient diff as symlink churn, refresh stale link targets.
  // `refresh_filter` limits target refresh to docs in the delta (null = refresh all).
  Result<void> MaterializeTransients(DirUid uid, const std::string& path,
                                     const Bitmap& raw, const Bitmap* refresh_filter,
                                     Bitmap* transient_delta);

  uint64_t DepEpochSum(DirUid uid) const;
  Bitmap DocDeltaSince(uint64_t gen_seen) const;
  void AppendDocLog(DocId doc);
  void CompactDocLog();

  HacFileSystem* host_;
  ConsistencyMode mode_;
  ThreadPool* pool_ = nullptr;  // not owned; null = serial passes
  size_t parallel_width_ = 1;

  // Batched origins awaiting a flush: directory -> accumulated contents delta.
  std::map<DirUid, Bitmap> pending_origins_;
  // Document-change log: (generation, docs changed at that generation).
  std::vector<std::pair<uint64_t, Bitmap>> doc_log_;
  uint64_t gen_ = 0;  // bumped at the start of every incremental pass

  int batch_depth_ = 0;
  bool batch_dirty_ = false;  // a mutation was recorded while a batch was open
  bool in_pass_ = false;
  bool suspended_ = false;
};

}  // namespace hac

#endif  // HAC_CORE_CONSISTENCY_ENGINE_H_
