#include "src/core/uid_map.h"

#include "src/vfs/path.h"

namespace hac {

UidMap::UidMap() {
  // The root is always registered; it anchors every scope chain.
  root_uid_ = next_uid_++;
  uid_to_path_.emplace(root_uid_, "/");
  path_to_uid_.emplace("/", root_uid_);
}

Result<DirUid> UidMap::Register(const std::string& path) {
  if (path_to_uid_.count(path) != 0) {
    return Error(ErrorCode::kAlreadyExists, path);
  }
  DirUid uid = next_uid_++;
  uid_to_path_.emplace(uid, path);
  path_to_uid_.emplace(path, uid);
  return uid;
}

Result<DirUid> UidMap::UidOf(const std::string& path) const {
  auto it = path_to_uid_.find(path);
  if (it == path_to_uid_.end()) {
    return Error(ErrorCode::kNotFound, "unregistered directory: " + path);
  }
  return it->second;
}

Result<std::string> UidMap::PathOf(DirUid uid) const {
  auto it = uid_to_path_.find(uid);
  if (it == uid_to_path_.end()) {
    return Error(ErrorCode::kNotFound, "unknown uid " + std::to_string(uid));
  }
  return it->second;
}

Result<void> UidMap::Remove(const std::string& path) {
  auto it = path_to_uid_.find(path);
  if (it == path_to_uid_.end()) {
    return Error(ErrorCode::kNotFound, path);
  }
  uid_to_path_.erase(it->second);
  path_to_uid_.erase(it);
  return OkResult();
}

std::vector<DirUid> UidMap::RenameSubtree(const std::string& from, const std::string& to) {
  std::vector<DirUid> changed;
  std::vector<std::pair<std::string, DirUid>> moves;
  for (const auto& [path, uid] : path_to_uid_) {
    if (PathIsWithin(path, from)) {
      moves.emplace_back(path, uid);
    }
  }
  for (const auto& [old_path, uid] : moves) {
    std::string new_path = RebasePath(old_path, from, to);
    path_to_uid_.erase(old_path);
    path_to_uid_.emplace(new_path, uid);
    uid_to_path_[uid] = new_path;
    changed.push_back(uid);
  }
  return changed;
}

std::vector<DirUid> UidMap::UidsWithin(const std::string& root) const {
  std::vector<DirUid> out;
  for (const auto& [path, uid] : path_to_uid_) {
    if (PathIsWithin(path, root)) {
      out.push_back(uid);
    }
  }
  return out;
}

size_t UidMap::SizeBytes() const {
  size_t total = 0;
  for (const auto& [uid, path] : uid_to_path_) {
    total += 2 * (path.size() + sizeof(DirUid)) + 96;  // two hash-map nodes
  }
  return total;
}

}  // namespace hac
