// Registry of indexable files: owns the dense DocId space that all bitmaps range over.
//
// Every regular file HAC knows about — locally created files and cached copies of
// imported remote documents — gets a DocId at creation. DocIds are never reused; a
// deleted file's record is kept (not alive) so prohibited/permanent bookkeeping that
// mentions it stays meaningful, exactly like the paper's compact file-list
// representation keeps slots stable between reindexing runs.
#ifndef HAC_CORE_FILE_REGISTRY_H_
#define HAC_CORE_FILE_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/cba.h"
#include "src/support/bitmap.h"
#include "src/support/result.h"
#include "src/vfs/types.h"

namespace hac {

inline constexpr DocId kInvalidDocId = 0xFFFFFFFFu;

struct FileRecord {
  DocId id = kInvalidDocId;
  InodeId inode = kInvalidInode;
  std::string path;       // current absolute path
  bool alive = false;     // false once the file is deleted
  bool dirty = false;     // content changed since last indexing
  bool remote = false;    // cached copy of a remote document
  std::string remote_key; // "<mount-uid>/<space>/<handle>" for remote docs
};

class FileRegistry {
 public:
  // Registers a new local file. The path must not already be registered.
  Result<DocId> Add(InodeId inode, const std::string& path);

  // Registers the cached copy of a remote document. Idempotent per remote_key:
  // returns the existing id when the same remote document was imported before.
  Result<DocId> AddRemote(InodeId inode, const std::string& path,
                          const std::string& remote_key);

  // Finds a live record by current path / inode.
  Result<DocId> FindByPath(const std::string& path) const;
  Result<DocId> FindByInode(InodeId inode) const;
  Result<DocId> FindRemote(const std::string& remote_key) const;

  const FileRecord* Get(DocId id) const;

  // Marks the file deleted. Keeps the record.
  Result<void> Deactivate(DocId id);

  Result<void> MarkDirty(DocId id);

  // Updates the path of one file.
  Result<void> SetPath(DocId id, const std::string& path);

  // Rewrites all live paths inside `from` to live under `to` (directory rename).
  void RenameSubtree(const std::string& from, const std::string& to);

  // All live files.
  const Bitmap& Universe() const { return universe_; }

  // Live files whose path lies strictly within `dir` (any depth).
  Bitmap FilesWithin(const std::string& dir) const;

  // Live files that are *direct* children of `dir`.
  Bitmap DirectChildrenOf(const std::string& dir) const;

  // Ids of dirty records (live => reindex, dead => purge from the index).
  std::vector<DocId> DirtyDocs() const;
  void ClearDirty(DocId id);

  size_t TotalRecords() const { return records_.size(); }
  size_t LiveCount() const { return universe_.Count(); }
  size_t SizeBytes() const;

  // Persistence support: re-appends a saved record. Records must arrive in id order
  // into an empty registry (ids are dense positions).
  Result<void> RestoreRecord(const FileRecord& rec);

 private:
  DocId NewRecord(InodeId inode, const std::string& path);

  std::vector<FileRecord> records_;  // indexed by DocId
  std::unordered_map<std::string, DocId> by_path_;
  std::unordered_map<InodeId, DocId> by_inode_;
  std::unordered_map<std::string, DocId> by_remote_key_;
  Bitmap universe_;
};

}  // namespace hac

#endif  // HAC_CORE_FILE_REGISTRY_H_
