// Attribute cache: HAC's stand-in for the paper's shared-memory attribute cache that
// "helps to speed up Scan and Read operations". Caches Stat results by inode; mutations
// invalidate. Shared across all HAC processes (the paper stores it in UNIX shared
// memory for the same reason) — and, under the hacd service layer, across concurrent
// reader threads, so the map is guarded by a mutex and the hit/miss counters are
// atomic. The critical sections are a hash probe or a hash insert; Stat itself is
// computed outside the lock.
#ifndef HAC_CORE_ATTRIBUTE_CACHE_H_
#define HAC_CORE_ATTRIBUTE_CACHE_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/vfs/types.h"

namespace hac {

class AttributeCache {
 public:
  std::optional<Stat> Get(InodeId inode) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(inode);
      if (it != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  void Put(InodeId inode, const Stat& st) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[inode] = st;
  }

  void Invalidate(InodeId inode) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.erase(inode);
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t EntryCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  size_t SizeBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size() * (sizeof(InodeId) + sizeof(Stat) + 48);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<InodeId, Stat> cache_;
  std::atomic<uint64_t> hits_ = 0;
  std::atomic<uint64_t> misses_ = 0;
};

}  // namespace hac

#endif  // HAC_CORE_ATTRIBUTE_CACHE_H_
