// Attribute cache: HAC's stand-in for the paper's shared-memory attribute cache that
// "helps to speed up Scan and Read operations". Caches Stat results by inode; mutations
// invalidate. Shared across all HAC processes (the paper stores it in UNIX shared
// memory for the same reason).
#ifndef HAC_CORE_ATTRIBUTE_CACHE_H_
#define HAC_CORE_ATTRIBUTE_CACHE_H_

#include <optional>
#include <unordered_map>

#include "src/vfs/types.h"

namespace hac {

class AttributeCache {
 public:
  std::optional<Stat> Get(InodeId inode) {
    auto it = cache_.find(inode);
    if (it == cache_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  void Put(InodeId inode, const Stat& st) { cache_[inode] = st; }

  void Invalidate(InodeId inode) { cache_.erase(inode); }
  void Clear() { cache_.clear(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t EntryCount() const { return cache_.size(); }
  size_t SizeBytes() const { return cache_.size() * (sizeof(InodeId) + sizeof(Stat) + 48); }

 private:
  std::unordered_map<InodeId, Stat> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace hac

#endif  // HAC_CORE_ATTRIBUTE_CACHE_H_
