// Semantic command layer: smkdir / schq / sreadq / ssync / sact / smount plus the
// link-class control API the paper exposes to "sophisticated users" (footnote 1).
#include <algorithm>
#include <cctype>

#include "src/core/hac_file_system.h"
#include "src/index/query_optimizer.h"
#include "src/support/string_util.h"
#include "src/vfs/path.h"

namespace hac {

Result<void> HacFileSystem::SMkdir(const std::string& path, const std::string& query) {
  HAC_RETURN_IF_ERROR(Mkdir(path));
  return SetQuery(path, query);
}

Result<void> HacFileSystem::SetQuery(const std::string& path, const std::string& query) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "queries live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(r.path));
  if (uid == uid_map_.root_uid()) {
    return Error(ErrorCode::kPermission, "the root has no query");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfUid(uid));

  if (TrimWhitespace(query).empty()) {
    // Revert to a syntactic directory: HAC-owned transient links disappear, the user's
    // permanent and prohibited bookkeeping stays. The cached evaluation and the
    // query's dependency-graph edges must go with the query — a stale cache here
    // would resurrect the old result set if a query is ever set again.
    meta->query_text.clear();
    QueryExprPtr old_query = std::move(meta->query);
    meta->query = nullptr;
    engine_->InvalidateCache(uid);
    Bitmap old_transient = meta->links.transient();
    Result<void> status = OkResult();
    old_transient.ForEach([&](DocId doc) {
      if (!status.ok()) {
        return;
      }
      auto name = meta->links.NameOf(doc);
      if (!name.ok()) {
        return;
      }
      (void)meta->links.RemoveLink(name.value());
      (void)vfs_.Unlink(JoinPath(r.path == "/" ? "" : r.path, name.value()));
      ++stats_.transient_links_removed;
    });
    HAC_RETURN_IF_ERROR(status);
    HAC_ASSIGN_OR_RETURN(std::vector<DirUid> deps, ComputeDeps(uid, r.path, nullptr));
    HAC_RETURN_IF_ERROR(graph_.SetDependencies(uid, deps));
    journal_.Append(JournalOp::kQuerySet, uid, r.path, "");
    // Dependents see every formerly provided transient doc as the delta.
    return engine_->NotifyScopeChanged(uid, &old_transient);
  }

  HAC_ASSIGN_OR_RETURN(QueryExprPtr ast, ParseQuery(query));
  // Bind dir() references to stable UIDs (section 2.5): queries never store paths.
  std::vector<QueryExpr*> refs;
  ast->CollectDirRefs(refs);
  for (QueryExpr* ref : refs) {
    if (ref->dir_uid != kInvalidDirUid) {
      continue;  // pre-bound (programmatic queries)
    }
    std::string ref_path = NormalizePath(ref->text);
    if (ref_path.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "dir() needs an absolute path: " + ref->text);
    }
    HAC_ASSIGN_OR_RETURN(DirUid ref_uid, uid_map_.UidOf(ref_path));
    ref->dir_uid = ref_uid;
    ref->text.clear();
  }
  HAC_ASSIGN_OR_RETURN(std::vector<DirUid> deps, ComputeDeps(uid, r.path, ast.get()));
  // Cycle rejection happens here, before any state changes.
  HAC_RETURN_IF_ERROR(graph_.SetDependencies(uid, deps));
  meta->query_text = query;
  meta->query = std::move(ast);
  // A cached evaluation of the previous query says nothing about this one.
  engine_->InvalidateCache(uid);
  journal_.Append(JournalOp::kQuerySet, uid, r.path, query);
  return engine_->NotifyScopeChanged(uid);
}

Result<std::string> HacFileSystem::GetQuery(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "queries live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(r.path));
  if (!meta->IsSemantic()) {
    return std::string();
  }
  std::function<std::string(DirUid)> uid_to_path = [this](DirUid uid) {
    auto p = uid_map_.PathOf(uid);
    return p.ok() ? p.value() : "#" + std::to_string(uid);
  };
  return meta->query->ToString(&uid_to_path);
}

Result<void> HacFileSystem::SSync(const std::string& path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "ssync applies to the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(r.path));
  return engine_->SyncFrom(uid);
}

Result<std::vector<std::string>> HacFileSystem::SAct(const std::string& link_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(link_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "sact applies to the local name space");
  }
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(DirName(r.path)));
  if (!meta->IsSemantic()) {
    return Error(ErrorCode::kNotSemantic, DirName(r.path) + " has no query");
  }
  HAC_ASSIGN_OR_RETURN(std::string body, vfs_.ReadFileToString(r.path));
  std::vector<std::string> matching;
  size_t start = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) {
      end = body.size();
    }
    std::string_view line(body.data() + start, end - start);
    if (!line.empty() && index_->MatchesText(*meta->query, line)) {
      matching.emplace_back(line);
    }
    if (end == body.size()) {
      break;
    }
    start = end + 1;
  }
  return matching;
}

Result<std::vector<std::string>> HacFileSystem::Search(const std::string& query,
                                                       const std::string& scope_dir) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(scope_dir));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "search applies to the local name space");
  }
  // Search reads link sets through dir() references and the scope directory: settle
  // any batched mutations first.
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(QueryExprPtr ast, ParseQuery(query));
  std::vector<QueryExpr*> refs;
  ast->CollectDirRefs(refs);
  for (QueryExpr* ref : refs) {
    std::string ref_path = NormalizePath(ref->text);
    if (ref_path.empty()) {
      return Error(ErrorCode::kInvalidArgument, "dir() needs an absolute path");
    }
    HAC_ASSIGN_OR_RETURN(DirUid ref_uid, uid_map_.UidOf(ref_path));
    ref->dir_uid = ref_uid;
    ref->text.clear();
  }
  HAC_ASSIGN_OR_RETURN(DirUid scope_uid, uid_map_.UidOf(r.path));
  HAC_ASSIGN_OR_RETURN(Bitmap scope, CachedDirContents(scope_uid));
  DirResolver resolver = [this](DirUid uid) -> Result<Bitmap> {
    return this->DirContentsOfUid(uid);
  };
  QueryExprPtr optimized = OptimizeQuery(std::move(ast), index_.get());
  HAC_ASSIGN_OR_RETURN(Bitmap result, index_->Evaluate(*optimized, scope, &resolver));
  std::vector<std::string> paths;
  result.ForEach([&](DocId doc) {
    const FileRecord* rec = registry_.Get(doc);
    if (rec != nullptr && rec->alive) {
      paths.push_back(rec->path);
    }
  });
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<Bitmap> HacFileSystem::CachedDirContents(DirUid uid) const {
  const uint64_t epoch = MutationEpoch();
  {
    std::lock_guard<std::mutex> lk(scope_memo_mu_);
    if (scope_memo_uid_ == uid && scope_memo_epoch_ == epoch) {
      return scope_memo_;
    }
  }
  HAC_ASSIGN_OR_RETURN(Bitmap contents, DirContentsOfUid(uid));
  std::lock_guard<std::mutex> lk(scope_memo_mu_);
  scope_memo_uid_ = uid;
  scope_memo_epoch_ = epoch;
  scope_memo_ = contents;
  return contents;
}

Result<SearchPageResult> HacFileSystem::SearchPage(const std::string& query,
                                                   const std::string& scope_dir,
                                                   const PageToken* token,
                                                   size_t max_results,
                                                   size_t max_bytes) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(scope_dir));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "search applies to the local name space");
  }
  HAC_RETURN_IF_ERROR(engine_->Flush());
  if (max_results == 0) {
    max_results = kDefaultPageEntries;
  }
  max_results = std::min(max_results, kMaxPageEntries);
  if (max_bytes == 0) {
    max_bytes = kDefaultPageBytes;
  }
  const uint64_t epoch = MutationEpoch();
  const bool resuming = token != nullptr && !token->at_start;
  // As in ReadDirPage: an at_start token rebases onto the current epoch.
  if (resuming && token->epoch != epoch) {
    return Error(ErrorCode::kStaleCursor,
                 "page token epoch " + std::to_string(token->epoch) +
                     " superseded by " + std::to_string(epoch) +
                     "; restart from the first page");
  }
  // Parse and bind exactly as Search() does; the difference is downstream — a
  // lazy cursor pull instead of a materialized result bitmap.
  HAC_ASSIGN_OR_RETURN(QueryExprPtr ast, ParseQuery(query));
  std::vector<QueryExpr*> refs;
  ast->CollectDirRefs(refs);
  for (QueryExpr* ref : refs) {
    std::string ref_path = NormalizePath(ref->text);
    if (ref_path.empty()) {
      return Error(ErrorCode::kInvalidArgument, "dir() needs an absolute path");
    }
    HAC_ASSIGN_OR_RETURN(DirUid ref_uid, uid_map_.UidOf(ref_path));
    ref->dir_uid = ref_uid;
    ref->text.clear();
  }
  HAC_ASSIGN_OR_RETURN(DirUid scope_uid, uid_map_.UidOf(r.path));
  HAC_ASSIGN_OR_RETURN(Bitmap scope, CachedDirContents(scope_uid));
  DirResolver resolver = [this](DirUid uid) -> Result<Bitmap> {
    return this->DirContentsOfUid(uid);
  };
  QueryExprPtr optimized = OptimizeQuery(std::move(ast), index_.get());
  HAC_ASSIGN_OR_RETURN(PostingCursorPtr cursor,
                       index_->OpenCursor(*optimized, scope, &resolver));
  const uint32_t start =
      resuming ? static_cast<uint32_t>(token->last_doc) + 1 : 0;
  SearchPageResult page;
  page.next = token != nullptr ? *token : PageToken{};
  page.next.epoch = epoch;
  size_t bytes = 0;
  for (uint32_t doc = cursor->SeekGE(start); doc != PostingCursor::kCursorEnd;
       doc = cursor->Next()) {
    const FileRecord* rec = registry_.Get(doc);
    if (rec == nullptr || !rec->alive) {
      continue;
    }
    if (page.paths.size() >= max_results ||
        (!page.paths.empty() && bytes + rec->path.size() > max_bytes)) {
      page.has_more = true;
      break;
    }
    bytes += rec->path.size();
    page.paths.push_back(rec->path);
    page.next.at_start = false;
    page.next.last_doc = doc;
  }
  return page;
}

// ---------------------------------------------------------------------------
// Mounts
// ---------------------------------------------------------------------------

Result<void> HacFileSystem::MountSyntactic(const std::string& path, FsInterface* fs,
                                           const std::string& remote_root) {
  std::string norm = NormalizePath(path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + path);
  }
  HAC_ASSIGN_OR_RETURN(Stat st, vfs_.LstatPath(norm));
  if (st.type != NodeType::kDirectory) {
    return Error(ErrorCode::kNotADirectory, norm);
  }
  std::string remote_norm = NormalizePath(remote_root);
  if (remote_norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "remote root must be absolute");
  }
  HAC_RETURN_IF_ERROR(mounts_.AddSyntactic(norm, fs, remote_norm));
  journal_.Append(JournalOp::kMount, 0, norm, "syntactic:" + remote_norm);
  return OkResult();
}

Result<void> HacFileSystem::MountSemantic(const std::string& path, NameSpace* space) {
  std::string norm = NormalizePath(path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + path);
  }
  HAC_ASSIGN_OR_RETURN(Stat st, vfs_.LstatPath(norm));
  if (st.type != NodeType::kDirectory) {
    return Error(ErrorCode::kNotADirectory, norm);
  }
  if (space != nullptr && !IsValidEntryName(space->Name())) {
    return Error(ErrorCode::kInvalidArgument, "name space needs a path-safe name");
  }
  HAC_RETURN_IF_ERROR(mounts_.AddSemantic(norm, space));
  journal_.Append(JournalOp::kMount, 0, norm, "semantic:" + space->Name());
  // Queries already asked under the mount now cover the new name space.
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(norm));
  return engine_->NotifyScopeChanged(uid);
}

Result<void> HacFileSystem::UnmountSyntactic(const std::string& path) {
  std::string norm = NormalizePath(path);
  HAC_RETURN_IF_ERROR(mounts_.RemoveSyntactic(norm));
  journal_.Append(JournalOp::kUnmount, 0, norm, "syntactic");
  return OkResult();
}

Result<void> HacFileSystem::UnmountSemantic(const std::string& path) {
  std::string norm = NormalizePath(path);
  HAC_RETURN_IF_ERROR(mounts_.RemoveSemantic(norm));
  journal_.Append(JournalOp::kUnmount, 0, norm, "semantic");
  // Cached imports remain as ordinary local files; only the live connection goes away.
  return OkResult();
}

// ---------------------------------------------------------------------------
// Link-class control
// ---------------------------------------------------------------------------

Result<LinkClassView> HacFileSystem::GetLinkClasses(const std::string& dir_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(dir_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "link classes live in the local name space");
  }
  HAC_RETURN_IF_ERROR(engine_->Flush());
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(r.path));
  LinkClassView view;
  for (const auto& [name, rec] : meta->links.links()) {
    std::string target;
    if (rec.doc != kInvalidDocId) {
      const FileRecord* file = registry_.Get(rec.doc);
      target = file != nullptr ? file->path : "";
    } else {
      auto t = vfs_.ReadLink(JoinPath(r.path == "/" ? "" : r.path, name));
      target = t.ok() ? t.value() : "";
    }
    if (rec.cls == LinkClass::kPermanent) {
      view.permanent.emplace_back(name, target);
    } else {
      view.transient.emplace_back(name, target);
    }
  }
  meta->links.prohibited().ForEach([&](DocId doc) {
    const FileRecord* file = registry_.Get(doc);
    view.prohibited.push_back(file != nullptr ? file->path
                                              : "#" + std::to_string(doc));
  });
  return view;
}

Result<void> HacFileSystem::PromoteLink(const std::string& link_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(link_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "link classes live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(DirName(r.path)));
  HAC_RETURN_IF_ERROR(meta->links.Promote(BaseName(r.path)));
  journal_.Append(JournalOp::kLinkPromoted, meta->uid, r.path);
  // Promotion changes classification, not membership: no propagation needed.
  return OkResult();
}

Result<void> HacFileSystem::DemoteLink(const std::string& link_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(link_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "link classes live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(DirName(r.path)));
  std::string name = BaseName(r.path);
  const LinkRecord* rec = meta->links.Find(name);
  if (rec == nullptr) {
    return Error(ErrorCode::kNotFound, "link " + name);
  }
  DocId doc = rec->doc;
  HAC_RETURN_IF_ERROR(meta->links.Demote(name));
  journal_.Append(JournalOp::kLinkDemoted, meta->uid, r.path);
  // Unlike promotion, demotion can change membership: the link is HAC's again and the
  // re-evaluation removes it unless the query still selects it.
  Bitmap delta;
  delta.Set(doc);
  return engine_->NotifyScopeChanged(meta->uid, &delta);
}

Result<void> HacFileSystem::Prohibit(const std::string& dir_path,
                                     const std::string& file_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(dir_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "link classes live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(r.path));
  std::string norm_file = NormalizePath(file_path);
  if (norm_file.empty()) {
    return Error(ErrorCode::kInvalidArgument, "file path must be absolute");
  }
  HAC_ASSIGN_OR_RETURN(DocId doc, registry_.FindByPath(norm_file));
  if (auto name = meta->links.NameOf(doc); name.ok()) {
    // Currently linked here: drop the link (and its symlink) on the way out.
    journal_.Append(JournalOp::kProhibitAdded, meta->uid, r.path, norm_file);
    return ProhibitTrackedLink(meta, r.path, name.value(), /*unlink_vfs=*/true);
  }
  if (meta->links.IsProhibited(doc)) {
    return OkResult();
  }
  meta->links.Prohibit(doc);
  journal_.Append(JournalOp::kProhibitAdded, meta->uid, r.path, norm_file);
  Bitmap delta;
  delta.Set(doc);
  return engine_->NotifyScopeChanged(meta->uid, &delta);
}

Result<void> HacFileSystem::Unprohibit(const std::string& dir_path,
                                       const std::string& file_path) {
  HAC_ASSIGN_OR_RETURN(Routed r, Route(dir_path));
  if (!r.local) {
    return Error(ErrorCode::kUnsupported, "link classes live in the local name space");
  }
  HAC_ASSIGN_OR_RETURN(DirMetadata * meta, MetaOfPath(r.path));
  std::string norm_file = NormalizePath(file_path);
  if (norm_file.empty()) {
    return Error(ErrorCode::kInvalidArgument, "file path must be absolute");
  }
  HAC_ASSIGN_OR_RETURN(DocId doc, registry_.FindByPath(norm_file));
  if (!meta->links.IsProhibited(doc)) {
    return Error(ErrorCode::kNotFound, norm_file + " is not prohibited here");
  }
  meta->links.Unprohibit(doc);
  journal_.Append(JournalOp::kProhibitCleared, meta->uid, r.path, norm_file);
  // The file may now come back as a transient link.
  Bitmap delta;
  delta.Set(doc);
  return engine_->NotifyScopeChanged(meta->uid, &delta);
}

}  // namespace hac
