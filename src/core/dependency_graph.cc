#include "src/core/dependency_graph.h"

#include <algorithm>
#include <queue>

namespace hac {

Result<void> DependencyGraph::AddNode(DirUid uid) {
  if (deps_.count(uid) != 0) {
    return Error(ErrorCode::kAlreadyExists, "dep node " + std::to_string(uid));
  }
  deps_.emplace(uid, std::unordered_set<DirUid>{});
  dependents_.emplace(uid, std::unordered_set<DirUid>{});
  return OkResult();
}

bool DependencyGraph::Reaches(DirUid start, DirUid target) const {
  std::vector<DirUid> stack = {start};
  std::unordered_set<DirUid> seen;
  while (!stack.empty()) {
    DirUid cur = stack.back();
    stack.pop_back();
    if (cur == target) {
      return true;
    }
    if (!seen.insert(cur).second) {
      continue;
    }
    auto it = dependents_.find(cur);
    if (it != dependents_.end()) {
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return false;
}

Result<void> DependencyGraph::SetDependencies(DirUid uid, const std::vector<DirUid>& new_deps) {
  auto it = deps_.find(uid);
  if (it == deps_.end()) {
    return Error(ErrorCode::kNotFound, "dep node " + std::to_string(uid));
  }
  for (DirUid dep : new_deps) {
    if (dep == uid) {
      return Error(ErrorCode::kCycle, "directory cannot depend on itself");
    }
    if (deps_.count(dep) == 0) {
      return Error(ErrorCode::kNotFound, "dep node " + std::to_string(dep));
    }
    // Adding edge dep -> uid creates a cycle iff dep is already downstream of uid.
    if (it->second.count(dep) == 0 && Reaches(uid, dep)) {
      return Error(ErrorCode::kCycle,
                   "dependency on " + std::to_string(dep) + " would create a cycle");
    }
  }
  for (DirUid old_dep : it->second) {
    dependents_[old_dep].erase(uid);
  }
  it->second.clear();
  for (DirUid dep : new_deps) {
    it->second.insert(dep);
    dependents_[dep].insert(uid);
  }
  return OkResult();
}

Result<void> DependencyGraph::RemoveNode(DirUid uid) {
  auto it = deps_.find(uid);
  if (it == deps_.end()) {
    return Error(ErrorCode::kNotFound, "dep node " + std::to_string(uid));
  }
  if (!dependents_.at(uid).empty()) {
    return Error(ErrorCode::kBusy,
                 "directory " + std::to_string(uid) + " is referenced by other queries");
  }
  for (DirUid dep : it->second) {
    dependents_[dep].erase(uid);
  }
  deps_.erase(it);
  dependents_.erase(uid);
  return OkResult();
}

std::vector<DirUid> DependencyGraph::DependenciesOf(DirUid uid) const {
  auto it = deps_.find(uid);
  if (it == deps_.end()) {
    return {};
  }
  std::vector<DirUid> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DirUid> DependencyGraph::DirectDependentsOf(DirUid uid) const {
  auto it = dependents_.find(uid);
  if (it == dependents_.end()) {
    return {};
  }
  std::vector<DirUid> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DirUid> DependencyGraph::DependentsInTopoOrder(DirUid uid) const {
  std::vector<DirUid> order = AffectedInTopoOrder({uid});
  order.erase(std::remove(order.begin(), order.end(), uid), order.end());
  return order;
}

std::unordered_set<DirUid> DependencyGraph::AffectedSet(
    const std::vector<DirUid>& sources) const {
  // The sources plus their dependent closure.
  std::unordered_set<DirUid> affected;
  std::vector<DirUid> stack;
  for (DirUid uid : sources) {
    if (deps_.count(uid) != 0 && affected.insert(uid).second) {
      stack.push_back(uid);
    }
  }
  while (!stack.empty()) {
    DirUid cur = stack.back();
    stack.pop_back();
    auto it = dependents_.find(cur);
    if (it == dependents_.end()) {
      continue;
    }
    for (DirUid next : it->second) {
      if (affected.insert(next).second) {
        stack.push_back(next);
      }
    }
  }
  return affected;
}

std::vector<DirUid> DependencyGraph::AffectedInTopoOrder(
    const std::vector<DirUid>& sources) const {
  std::unordered_set<DirUid> affected = AffectedSet(sources);
  // Kahn over the affected subgraph; only edges internal to it count.
  std::unordered_map<DirUid, size_t> in_degree;
  for (DirUid node : affected) {
    size_t d = 0;
    for (DirUid dep : deps_.at(node)) {
      if (affected.count(dep) != 0) {
        ++d;
      }
    }
    in_degree[node] = d;
  }
  // Deterministic order: smallest uid first among ready nodes.
  std::priority_queue<DirUid, std::vector<DirUid>, std::greater<>> ready;
  for (const auto& [node, d] : in_degree) {
    if (d == 0) {
      ready.push(node);
    }
  }
  std::vector<DirUid> order;
  order.reserve(affected.size());
  while (!ready.empty()) {
    DirUid cur = ready.top();
    ready.pop();
    order.push_back(cur);
    for (DirUid next : dependents_.at(cur)) {
      auto it = in_degree.find(next);
      if (it != in_degree.end() && --it->second == 0) {
        ready.push(next);
      }
    }
  }
  return order;
}

std::vector<DirUid> DependencyGraph::FullTopoOrder() const {
  std::unordered_map<DirUid, size_t> in_degree;
  for (const auto& [node, node_deps] : deps_) {
    in_degree[node] = node_deps.size();
  }
  std::priority_queue<DirUid, std::vector<DirUid>, std::greater<>> ready;
  for (const auto& [node, d] : in_degree) {
    if (d == 0) {
      ready.push(node);
    }
  }
  std::vector<DirUid> order;
  order.reserve(deps_.size());
  while (!ready.empty()) {
    DirUid cur = ready.top();
    ready.pop();
    order.push_back(cur);
    for (DirUid next : dependents_.at(cur)) {
      if (--in_degree[next] == 0) {
        ready.push(next);
      }
    }
  }
  return order;
}

std::vector<std::vector<DirUid>> DependencyGraph::LevelsOf(
    const std::unordered_set<DirUid>& nodes) const {
  std::unordered_map<DirUid, size_t> in_degree;
  in_degree.reserve(nodes.size());
  for (DirUid node : nodes) {
    size_t d = 0;
    for (DirUid dep : deps_.at(node)) {
      if (nodes.count(dep) != 0) {
        ++d;
      }
    }
    in_degree[node] = d;
  }
  std::vector<DirUid> current;
  for (const auto& [node, d] : in_degree) {
    if (d == 0) {
      current.push_back(node);
    }
  }
  std::sort(current.begin(), current.end());
  std::vector<std::vector<DirUid>> levels;
  while (!current.empty()) {
    std::vector<DirUid> next;
    for (DirUid cur : current) {
      for (DirUid dep : dependents_.at(cur)) {
        auto it = in_degree.find(dep);
        if (it != in_degree.end() && --it->second == 0) {
          next.push_back(dep);
        }
      }
    }
    std::sort(next.begin(), next.end());
    levels.push_back(std::move(current));
    current = std::move(next);
  }
  return levels;
}

std::vector<std::vector<DirUid>> DependencyGraph::AffectedInLevels(
    const std::vector<DirUid>& sources) const {
  return LevelsOf(AffectedSet(sources));
}

std::vector<std::vector<DirUid>> DependencyGraph::FullLevels() const {
  std::unordered_set<DirUid> all;
  all.reserve(deps_.size());
  for (const auto& [node, node_deps] : deps_) {
    (void)node_deps;
    all.insert(node);
  }
  return LevelsOf(all);
}

size_t DependencyGraph::EdgeCount() const {
  size_t n = 0;
  for (const auto& [node, node_deps] : deps_) {
    n += node_deps.size();
  }
  return n;
}

size_t DependencyGraph::SizeBytes() const {
  return deps_.size() * 96 + EdgeCount() * 2 * 16;
}

}  // namespace hac
