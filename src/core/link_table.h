// Per-directory symbolic-link bookkeeping: the paper's three link classes.
//
//   permanent  — links the user created explicitly; HAC never removes them.
//   transient  — links produced by query evaluation; HAC owns them entirely.
//   prohibited — links the user deleted; HAC must never silently re-add them.
//
// Links to registered files are tracked by DocId so bitmap algebra applies; links whose
// target is not a registered file ("foreign" links, e.g. to an unmounted remote path)
// are permanent by definition and carry no DocId.
#ifndef HAC_CORE_LINK_TABLE_H_
#define HAC_CORE_LINK_TABLE_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "src/core/file_registry.h"
#include "src/support/bitmap.h"
#include "src/support/result.h"

namespace hac {

enum class LinkClass : uint8_t {
  kPermanent = 0,
  kTransient = 1,
};

struct LinkRecord {
  DocId doc = kInvalidDocId;  // kInvalidDocId for foreign permanent links
  LinkClass cls = LinkClass::kPermanent;
};

class LinkTable {
 public:
  // Registers a link entry named `name` for `doc`. Fails if the name is taken.
  Result<void> AddLink(const std::string& name, DocId doc, LinkClass cls);

  // Registers a foreign permanent link (no DocId).
  Result<void> AddForeignLink(const std::string& name);

  // Removes the entry; returns its record.
  Result<LinkRecord> RemoveLink(const std::string& name);

  // The record for entry `name`, if it is a tracked link.
  const LinkRecord* Find(const std::string& name) const;

  // Current entry name of the link to `doc`, if any.
  Result<std::string> NameOf(DocId doc) const;

  bool HasDoc(DocId doc) const { return name_of_doc_.count(doc) != 0; }

  // Picks an unused entry name based on `base` ("paper.txt", "paper.txt~2", ...).
  // `taken` reports names used by non-link entries in the same directory.
  std::string UniqueName(const std::string& base,
                         const std::function<bool(const std::string&)>& taken) const;

  // --- class sets ---
  const Bitmap& permanent() const { return permanent_; }
  const Bitmap& transient() const { return transient_; }
  const Bitmap& prohibited() const { return prohibited_; }

  // Current link set: what this directory "provides" (transient | permanent docs).
  Bitmap LinkSet() const;

  void Prohibit(DocId doc) { prohibited_.Set(doc); }
  void Unprohibit(DocId doc) { prohibited_.Clear(doc); }
  bool IsProhibited(DocId doc) const { return prohibited_.Test(doc); }

  // Promotes an existing transient link to permanent (the paper's footnote API).
  Result<void> Promote(const std::string& name);

  // The inverse: hands a permanent link back to HAC as transient, so the next
  // re-evaluation may remove it. Foreign links (no DocId) cannot be demoted.
  Result<void> Demote(const std::string& name);

  const std::map<std::string, LinkRecord>& links() const { return links_; }

  size_t SizeBytes() const;

 private:
  std::map<std::string, LinkRecord> links_;          // entry name -> record
  std::unordered_map<DocId, std::string> name_of_doc_;
  Bitmap permanent_;   // docs with a permanent link here
  Bitmap transient_;   // docs with a transient link here
  Bitmap prohibited_;  // docs the user evicted
};

}  // namespace hac

#endif  // HAC_CORE_LINK_TABLE_H_
