// The dependency graph of section 2.5: node per directory, edge Y -> X when X's
// query-result depends on Y (X's parent, or a dir(Y) reference inside X's query).
//
// The graph must stay a DAG; SetDependencies rejects updates that would close a cycle.
// Updates after a change at `uid` run over DependentsInTopoOrder(uid), a topological
// order of everything reachable from `uid` (Kahn's algorithm restricted to the affected
// subgraph) — the paper's "order obtained from a topological sort".
#ifndef HAC_CORE_DEPENDENCY_GRAPH_H_
#define HAC_CORE_DEPENDENCY_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/index/query.h"  // DirUid
#include "src/support/result.h"

namespace hac {

class DependencyGraph {
 public:
  // Creates an isolated node. Fails with kAlreadyExists when present.
  Result<void> AddNode(DirUid uid);

  bool HasNode(DirUid uid) const { return deps_.count(uid) != 0; }

  // Replaces `uid`'s dependency set. Every dep must exist. Rejects self-loops and any
  // update that would create a cycle (kCycle), leaving the graph unchanged.
  Result<void> SetDependencies(DirUid uid, const std::vector<DirUid>& new_deps);

  // Removes a node. Fails with kBusy if any other node depends on it.
  Result<void> RemoveNode(DirUid uid);

  // Dependencies of `uid` (what it reads from).
  std::vector<DirUid> DependenciesOf(DirUid uid) const;
  // Direct dependents of `uid` (who reads from it).
  std::vector<DirUid> DirectDependentsOf(DirUid uid) const;

  // All nodes reachable from `uid` along dependent edges, in topological order,
  // excluding `uid` itself.
  std::vector<DirUid> DependentsInTopoOrder(DirUid uid) const;

  // The union of `sources` and everything reachable from any of them along dependent
  // edges, in topological order. This is the affected set of a batched flush: one
  // pass over AffectedInTopoOrder replaces one DependentsInTopoOrder pass per edit.
  std::vector<DirUid> AffectedInTopoOrder(const std::vector<DirUid>& sources) const;

  // Topological order of the whole graph (dependencies first).
  std::vector<DirUid> FullTopoOrder() const;

  // Wavefront schedule of the affected subgraph: the same nodes AffectedInTopoOrder
  // returns, grouped into topological levels. A node's level is the longest
  // dependency path to it WITHIN the affected set, so every node's in-set
  // dependencies sit in strictly earlier levels and nodes sharing a level are
  // pairwise independent — they may be re-evaluated concurrently once a barrier has
  // finalized the previous level. Each level is sorted ascending and the flattened
  // schedule is a valid topological order (the canonical visit order of the
  // consistency engine's passes, serial or parallel).
  std::vector<std::vector<DirUid>> AffectedInLevels(
      const std::vector<DirUid>& sources) const;

  // Wavefront schedule of the whole graph (Reindex / persistence-load passes).
  std::vector<std::vector<DirUid>> FullLevels() const;

  size_t NodeCount() const { return deps_.size(); }
  size_t EdgeCount() const;
  size_t SizeBytes() const;

 private:
  // True if `target` is reachable from `start` along dependent edges.
  bool Reaches(DirUid start, DirUid target) const;

  // Sources plus their dependent closure (the affected set of a pass).
  std::unordered_set<DirUid> AffectedSet(const std::vector<DirUid>& sources) const;

  // Kahn's algorithm over the subgraph induced by `nodes`, emitting whole ready
  // levels (each sorted ascending) instead of one node at a time.
  std::vector<std::vector<DirUid>> LevelsOf(const std::unordered_set<DirUid>& nodes) const;

  std::unordered_map<DirUid, std::unordered_set<DirUid>> deps_;        // uid -> reads-from
  std::unordered_map<DirUid, std::unordered_set<DirUid>> dependents_;  // uid -> read-by
};

}  // namespace hac

#endif  // HAC_CORE_DEPENDENCY_GRAPH_H_
