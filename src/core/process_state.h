// Per-process HAC state: the user-level descriptor table the paper charges to the Read
// phase of the Andrew benchmark ("HAC accesses and updates the per-process
// file-descriptor table to implement the read-operation").
//
// A HAC descriptor maps to a backend (the local VFS or a syntactically mounted file
// system) plus the backend's descriptor.
#ifndef HAC_CORE_PROCESS_STATE_H_
#define HAC_CORE_PROCESS_STATE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/support/result.h"
#include "src/vfs/fs_interface.h"

namespace hac {

using ProcessId = uint32_t;

struct HacOpenFile {
  FsInterface* backend = nullptr;  // where the descriptor lives
  Fd backend_fd = -1;
  InodeId inode = kInvalidInode;   // local files only; kInvalidInode through mounts
  std::string path;                // as opened (HAC-namespace path)
  uint64_t reads = 0;
  uint64_t writes = 0;
};

class HacFdTable {
 public:
  Fd Allocate(HacOpenFile file) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].has_value()) {
        slots_[i] = std::move(file);
        return static_cast<Fd>(i);
      }
    }
    slots_.push_back(std::move(file));
    return static_cast<Fd>(slots_.size() - 1);
  }

  Result<HacOpenFile*> Get(Fd fd) {
    if (fd < 0 || static_cast<size_t>(fd) >= slots_.size() ||
        !slots_[static_cast<size_t>(fd)]) {
      return Error(ErrorCode::kBadDescriptor, "hac fd " + std::to_string(fd));
    }
    return &*slots_[static_cast<size_t>(fd)];
  }

  Result<HacOpenFile> Release(Fd fd) {
    HAC_ASSIGN_OR_RETURN(HacOpenFile * of, Get(fd));
    HacOpenFile out = std::move(*of);
    slots_[static_cast<size_t>(fd)].reset();
    return out;
  }

  size_t SizeBytes() const {
    size_t total = slots_.capacity() * sizeof(slots_[0]);
    for (const auto& slot : slots_) {
      if (slot) {
        total += slot->path.size();
      }
    }
    return total;
  }

 private:
  std::vector<std::optional<HacOpenFile>> slots_;
};

}  // namespace hac

#endif  // HAC_CORE_PROCESS_STATE_H_
