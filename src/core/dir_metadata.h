// Per-directory HAC metadata. The paper creates these structures for *every* directory
// at mkdir time (that is the measured Makedir overhead): the query slot, the link/result
// sets, the global-map entry and the dependency-graph node. A directory is "semantic"
// when its query is non-empty.
#ifndef HAC_CORE_DIR_METADATA_H_
#define HAC_CORE_DIR_METADATA_H_

#include <memory>
#include <string>

#include "src/core/link_table.h"
#include "src/index/query.h"

namespace hac {

struct DirMetadata {
  DirUid uid = kInvalidDirUid;
  InodeId inode = kInvalidInode;

  // The query as the user wrote it ("" for syntactic directories).
  std::string query_text;
  // Bound AST (dir() references resolved to UIDs); null when query_text is empty.
  QueryExprPtr query;

  LinkTable links;

  bool IsSemantic() const { return query != nullptr; }

  size_t SizeBytes() const {
    size_t ast = 0;
    if (query != nullptr) {
      // Rough per-node cost; exact enough for the space-overhead experiment.
      std::vector<const QueryExpr*> stack = {query.get()};
      while (!stack.empty()) {
        const QueryExpr* e = stack.back();
        stack.pop_back();
        ast += sizeof(QueryExpr) + e->text.size();
        for (const auto& c : e->children) {
          stack.push_back(c.get());
        }
      }
    }
    return sizeof(DirMetadata) + query_text.size() + ast + links.SizeBytes();
  }
};

}  // namespace hac

#endif  // HAC_CORE_DIR_METADATA_H_
