// Per-directory HAC metadata. The paper creates these structures for *every* directory
// at mkdir time (that is the measured Makedir overhead): the query slot, the link/result
// sets, the global-map entry and the dependency-graph node. A directory is "semantic"
// when its query is non-empty.
#ifndef HAC_CORE_DIR_METADATA_H_
#define HAC_CORE_DIR_METADATA_H_

#include <memory>
#include <string>

#include "src/core/link_table.h"
#include "src/index/query.h"

namespace hac {

// Cached evaluation state kept by the incremental consistency engine
// (core/consistency_engine.cc). `raw_result` is Eval(query, scope) *before* the
// link-class edits (permanent/prohibited/self-link subtraction), so a scope delta can
// be spliced in without re-deriving the user's edits. The eager engine ignores it.
struct DirEvalCache {
  bool valid = false;
  Bitmap raw_result;        // Eval(query, scope) at the last visit
  Bitmap scope;             // parent-provided scope at the last visit
  uint64_t dep_epoch_sum = 0;   // Σ scope_epoch over dependencies at the last visit
  uint64_t doc_gen_seen = 0;    // engine doc-change generation applied so far

  void Invalidate() {
    valid = false;
    raw_result = Bitmap();
    scope = Bitmap();
    dep_epoch_sum = 0;
    doc_gen_seen = 0;
  }

  size_t SizeBytes() const { return raw_result.SizeBytes() + scope.SizeBytes(); }
};

struct DirMetadata {
  DirUid uid = kInvalidDirUid;
  InodeId inode = kInvalidInode;

  // The query as the user wrote it ("" for syntactic directories).
  std::string query_text;
  // Bound AST (dir() references resolved to UIDs); null when query_text is empty.
  QueryExprPtr query;

  LinkTable links;

  // Scope version: bumped whenever what this directory provides to dependents (its
  // link set, the files physically under it, or — for scope-transparent syntactic
  // directories — the scope passed through from above) may have changed. Dependents
  // compare the sum of their dependencies' epochs against DirEvalCache::dep_epoch_sum
  // to short-circuit propagation when nothing upstream moved.
  uint64_t scope_epoch = 0;
  DirEvalCache eval;

  bool IsSemantic() const { return query != nullptr; }

  size_t SizeBytes() const {
    size_t ast = 0;
    if (query != nullptr) {
      // Rough per-node cost; exact enough for the space-overhead experiment.
      std::vector<const QueryExpr*> stack = {query.get()};
      while (!stack.empty()) {
        const QueryExpr* e = stack.back();
        stack.pop_back();
        ast += sizeof(QueryExpr) + e->text.size();
        for (const auto& c : e->children) {
          stack.push_back(c.get());
        }
      }
    }
    return sizeof(DirMetadata) + query_text.size() + ast + links.SizeBytes() +
           eval.SizeBytes();
  }
};

}  // namespace hac

#endif  // HAC_CORE_DIR_METADATA_H_
