#include "src/core/link_table.h"

namespace hac {

Result<void> LinkTable::AddLink(const std::string& name, DocId doc, LinkClass cls) {
  if (links_.count(name) != 0) {
    return Error(ErrorCode::kAlreadyExists, "link " + name);
  }
  if (doc == kInvalidDocId) {
    return Error(ErrorCode::kInvalidArgument, "tracked link needs a DocId");
  }
  if (name_of_doc_.count(doc) != 0) {
    return Error(ErrorCode::kAlreadyExists,
                 "directory already links doc " + std::to_string(doc));
  }
  links_.emplace(name, LinkRecord{doc, cls});
  name_of_doc_.emplace(doc, name);
  (cls == LinkClass::kPermanent ? permanent_ : transient_).Set(doc);
  return OkResult();
}

Result<void> LinkTable::AddForeignLink(const std::string& name) {
  if (links_.count(name) != 0) {
    return Error(ErrorCode::kAlreadyExists, "link " + name);
  }
  links_.emplace(name, LinkRecord{kInvalidDocId, LinkClass::kPermanent});
  return OkResult();
}

Result<LinkRecord> LinkTable::RemoveLink(const std::string& name) {
  auto it = links_.find(name);
  if (it == links_.end()) {
    return Error(ErrorCode::kNotFound, "link " + name);
  }
  LinkRecord rec = it->second;
  links_.erase(it);
  if (rec.doc != kInvalidDocId) {
    name_of_doc_.erase(rec.doc);
    (rec.cls == LinkClass::kPermanent ? permanent_ : transient_).Clear(rec.doc);
  }
  return rec;
}

const LinkRecord* LinkTable::Find(const std::string& name) const {
  auto it = links_.find(name);
  return it == links_.end() ? nullptr : &it->second;
}

Result<std::string> LinkTable::NameOf(DocId doc) const {
  auto it = name_of_doc_.find(doc);
  if (it == name_of_doc_.end()) {
    return Error(ErrorCode::kNotFound, "no link for doc " + std::to_string(doc));
  }
  return it->second;
}

std::string LinkTable::UniqueName(
    const std::string& base, const std::function<bool(const std::string&)>& taken) const {
  std::string candidate = base.empty() ? "link" : base;
  int suffix = 2;
  while (links_.count(candidate) != 0 || taken(candidate)) {
    candidate = (base.empty() ? "link" : base) + "~" + std::to_string(suffix++);
  }
  return candidate;
}

Bitmap LinkTable::LinkSet() const {
  Bitmap out = transient_;
  out |= permanent_;
  return out;
}

Result<void> LinkTable::Promote(const std::string& name) {
  auto it = links_.find(name);
  if (it == links_.end()) {
    return Error(ErrorCode::kNotFound, "link " + name);
  }
  LinkRecord& rec = it->second;
  if (rec.doc == kInvalidDocId || rec.cls == LinkClass::kPermanent) {
    return OkResult();  // already permanent
  }
  rec.cls = LinkClass::kPermanent;
  transient_.Clear(rec.doc);
  permanent_.Set(rec.doc);
  return OkResult();
}

Result<void> LinkTable::Demote(const std::string& name) {
  auto it = links_.find(name);
  if (it == links_.end()) {
    return Error(ErrorCode::kNotFound, "link " + name);
  }
  LinkRecord& rec = it->second;
  if (rec.doc == kInvalidDocId) {
    return Error(ErrorCode::kInvalidArgument,
                 "foreign link " + name + " has no document to hand back");
  }
  if (rec.cls == LinkClass::kTransient) {
    return OkResult();  // already transient
  }
  rec.cls = LinkClass::kTransient;
  permanent_.Clear(rec.doc);
  transient_.Set(rec.doc);
  return OkResult();
}

size_t LinkTable::SizeBytes() const {
  size_t total = permanent_.SizeBytes() + transient_.SizeBytes() + prohibited_.SizeBytes();
  for (const auto& [name, rec] : links_) {
    total += 2 * name.size() + sizeof(LinkRecord) + 96;
  }
  return total;
}

}  // namespace hac
