// Continuation tokens and page shapes for the streaming read surface
// (HacFileSystem::ReadDirPage / SearchPage, and the hacd cursor ops layered on
// them — docs/API.md "Cursor ops").
//
// A PageToken is deliberately tiny re-execution state, not a live iterator: the
// position reached so far (last entry name for directory enumeration, last DocId
// for search) plus the mutation epoch the sequence started at. Each page is
// produced by re-seeking past that position, so nothing — no VFS iterators, no
// posting-list pointers — survives between pages. The epoch pins consistency:
// any acknowledged mutation (journaled user operation, or reindex ingest/purge)
// bumps HacFileSystem::MutationEpoch(), and a token minted under an older epoch
// is refused with kStaleCursor. Callers restart from page one — the documented
// retry semantics, mirroring kStaleExport for remote exports.
#ifndef HAC_CORE_PAGING_H_
#define HAC_CORE_PAGING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/vfs/types.h"

namespace hac {

// Page-size policy shared by the facade and the hacd cursor ops. The entry cap
// and byte budget together bound the encoded response frame (names plus a few
// varints per entry) far below the reactor's write_high_water (1 MiB default),
// so a paged response never trips the backpressure machinery it exists to avoid.
inline constexpr size_t kDefaultPageEntries = 1024;
inline constexpr size_t kMaxPageEntries = 4096;
inline constexpr size_t kDefaultPageBytes = 256 << 10;

struct PageToken {
  uint64_t epoch = 0;       // MutationEpoch() the sequence started at
  bool at_start = true;     // no page delivered yet; position fields unset
  uint64_t last_doc = 0;    // search: last DocId delivered
  std::string last_name;    // readdir: last entry name delivered
};

struct DirPageResult {
  std::vector<DirEntry> entries;
  bool has_more = false;
  PageToken next;  // pass back to fetch the following page
};

struct SearchPageResult {
  // Matching registry paths in DocId order (NOT sorted by path — a total order
  // over pages only needs a stable key, and DocId is the cursor's native one).
  std::vector<std::string> paths;
  bool has_more = false;
  PageToken next;
};

}  // namespace hac

#endif  // HAC_CORE_PAGING_H_
