#include "src/core/metadata_journal.h"

#include <cstddef>

namespace hac {

bool IsReplayableOp(JournalOp op) {
  switch (op) {
    case JournalOp::kDirCreated:
    case JournalOp::kDirRemoved:
    case JournalOp::kFileRegistered:
    case JournalOp::kQuerySet:
    case JournalOp::kRename:
    case JournalOp::kFileWritten:
    case JournalOp::kFileTruncated:
    case JournalOp::kUnlinked:
    case JournalOp::kSymlinked:
    case JournalOp::kLinkPromoted:
    case JournalOp::kLinkDemoted:
    case JournalOp::kProhibitAdded:
    case JournalOp::kProhibitCleared:
      return true;
    case JournalOp::kFileDeactivated:
    case JournalOp::kLinkAdded:
    case JournalOp::kLinkRemoved:
    case JournalOp::kMount:
    case JournalOp::kUnmount:
      return false;
  }
  return false;
}

void MetadataJournal::Append(JournalOp op, uint64_t subject, std::string_view a,
                             std::string_view b) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(op));
  w.PutVarint(subject);
  w.PutString(a);
  w.PutString(b);
  const std::vector<uint8_t>& rec = w.buffer();
  ByteWriter frame;
  frame.PutVarint(rec.size());
  buf_.insert(buf_.end(), frame.buffer().begin(), frame.buffer().end());
  buf_.insert(buf_.end(), rec.begin(), rec.end());
  ++records_;
}

Result<std::vector<JournalRecord>> MetadataJournal::Decode() const {
  std::vector<JournalRecord> out;
  ByteReader r(buf_);
  while (!r.AtEnd()) {
    HAC_ASSIGN_OR_RETURN(uint64_t len, r.GetVarint());
    (void)len;
    JournalRecord rec;
    HAC_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    rec.op = static_cast<JournalOp>(op);
    HAC_ASSIGN_OR_RETURN(rec.subject, r.GetVarint());
    HAC_ASSIGN_OR_RETURN(rec.a, r.GetString());
    HAC_ASSIGN_OR_RETURN(rec.b, r.GetString());
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<JournalRecord> MetadataJournal::Drain(size_t max_records) {
  std::vector<JournalRecord> out;
  ByteReader r(buf_);
  size_t consumed = 0;
  while (!r.AtEnd() && (max_records == 0 || out.size() < max_records)) {
    // The buffer only ever holds frames Append() wrote, so a decode failure here
    // means memory corruption; stop draining and leave the tail untouched.
    auto len = r.GetVarint();
    if (!len.ok() || len.value() > r.remaining()) break;
    JournalRecord rec;
    auto op = r.GetU8();
    if (!op.ok()) break;
    rec.op = static_cast<JournalOp>(op.value());
    auto subject = r.GetVarint();
    if (!subject.ok()) break;
    rec.subject = subject.value();
    auto a = r.GetString();
    if (!a.ok()) break;
    rec.a = std::move(a).value();
    auto b = r.GetString();
    if (!b.ok()) break;
    rec.b = std::move(b).value();
    out.push_back(std::move(rec));
    consumed = buf_.size() - r.remaining();
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed));
  drained_ += out.size();
  return out;
}

void MetadataJournal::Clear() {
  buf_.clear();
  records_ = 0;
  drained_ = 0;
}

}  // namespace hac
