#include "src/core/metadata_journal.h"

namespace hac {

void MetadataJournal::Append(JournalOp op, uint64_t subject, std::string_view a,
                             std::string_view b) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(op));
  w.PutVarint(subject);
  w.PutString(a);
  w.PutString(b);
  const std::vector<uint8_t>& rec = w.buffer();
  ByteWriter frame;
  frame.PutVarint(rec.size());
  buf_.insert(buf_.end(), frame.buffer().begin(), frame.buffer().end());
  buf_.insert(buf_.end(), rec.begin(), rec.end());
  ++records_;
}

Result<std::vector<JournalRecord>> MetadataJournal::Decode() const {
  std::vector<JournalRecord> out;
  ByteReader r(buf_);
  while (!r.AtEnd()) {
    HAC_ASSIGN_OR_RETURN(uint64_t len, r.GetVarint());
    (void)len;
    JournalRecord rec;
    HAC_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    rec.op = static_cast<JournalOp>(op);
    HAC_ASSIGN_OR_RETURN(rec.subject, r.GetVarint());
    HAC_ASSIGN_OR_RETURN(rec.a, r.GetString());
    HAC_ASSIGN_OR_RETURN(rec.b, r.GetString());
    out.push_back(std::move(rec));
  }
  return out;
}

void MetadataJournal::Clear() {
  buf_.clear();
  records_ = 0;
}

}  // namespace hac
