// HacFileSystem: the public facade of the library — the paper's HAC file system.
//
// It layers on the in-memory VFS exactly the way the paper's prototype layers on UNIX:
// every file-system call is intercepted, forwarded, and charged with HAC bookkeeping
// (per-directory metadata, the global UID map, the dependency graph, the attribute
// cache, per-process descriptor tables, the metadata journal). On top of the ordinary
// call surface it adds the semantic operations: smkdir / schq / sreadq / ssync / sact /
// smount and the link-class control API of the paper's footnote 1.
//
// Consistency model (sections 2.3-2.4):
//   * scope consistency is restored after any link edit, query change or directory
//     move by the ConsistencyEngine (core/consistency_engine.h): immediately with the
//     eager engine, or as epoch-gated delta propagation — coalescible into batches via
//     BeginBatch()/EndBatch() — with the incremental engine (the default);
//   * data consistency (file contents/creation/deletion) is deferred to Reindex(),
//     driven manually or by a SyncPolicy.
#ifndef HAC_CORE_HAC_FILE_SYSTEM_H_
#define HAC_CORE_HAC_FILE_SYSTEM_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/attribute_cache.h"
#include "src/core/consistency_engine.h"
#include "src/core/dependency_graph.h"
#include "src/core/dir_metadata.h"
#include "src/core/file_registry.h"
#include "src/core/metadata_journal.h"
#include "src/core/mount_table.h"
#include "src/core/paging.h"
#include "src/core/process_state.h"
#include "src/core/stats_snapshot.h"
#include "src/core/sync_policy.h"
#include "src/core/uid_map.h"
#include "src/index/cba.h"
#include "src/index/inverted_index.h"
#include "src/support/thread_pool.h"
#include "src/vfs/file_system.h"

namespace hac {

struct HacOptions {
  SyncPolicy sync_policy = SyncPolicy::Manual();
  TokenizerOptions tokenizer;
  // Which scope-consistency engine maintains transient links. kIncremental batches
  // and delta-evaluates; kEager is the paper-faithful full re-evaluation. Both keep
  // identical link sets at every read point.
  ConsistencyMode consistency = ConsistencyMode::kIncremental;
  // Glimpse-fidelity mode: re-check every query candidate against the file's current
  // content (the two-level search cost model). Off by default — the library's deferred
  // data-consistency semantics (stale links persist until reindex) are the paper's.
  bool verify_results_with_content = false;
  // Wavefront parallelism for incremental propagation passes: the number of threads
  // (including the calling one) that plan a topological level concurrently. 1 (the
  // default) keeps propagation serial; N > 1 makes the facade own a ThreadPool of
  // N - 1 helpers. Results are byte-identical either way — this is an A/B knob like
  // `consistency`. Ignored by the eager engine and (at pass time) while semantic
  // mounts exist or when verify_results_with_content is set: content verification
  // re-reads files through the single-threaded VFS during evaluation.
  size_t parallelism = 1;
};

// Snapshot of a directory's link classification (names relative to the directory).
struct LinkClassView {
  std::vector<std::pair<std::string, std::string>> permanent;  // name -> target
  std::vector<std::pair<std::string, std::string>> transient;  // name -> target
  std::vector<std::string> prohibited;                         // target paths
};

class HacFileSystem final : public FsInterface {
 public:
  explicit HacFileSystem(HacOptions options = {});

  // --- FsInterface (intercepted ordinary operations) ---
  Result<void> Mkdir(const std::string& path) override;
  Result<void> Rmdir(const std::string& path) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Result<Fd> Open(const std::string& path, uint32_t flags) override;
  Result<void> Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t n) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t n) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Result<void> Unlink(const std::string& path) override;
  Result<void> Rename(const std::string& from, const std::string& to) override;
  Result<void> Symlink(const std::string& target, const std::string& link_path) override;
  Result<std::string> ReadLink(const std::string& path) override;
  Result<Stat> StatPath(const std::string& path) override;
  Result<Stat> LstatPath(const std::string& path) override;

  // --- semantic operations (the paper's command extensions) ---

  // smkdir: create a directory and associate a query with it.
  Result<void> SMkdir(const std::string& path, const std::string& query);

  // schq: set/replace the query of an existing directory ("" reverts it to syntactic).
  Result<void> SetQuery(const std::string& path, const std::string& query);

  // sreadq: the directory's query, rendered with current (post-rename) paths.
  Result<std::string> GetQuery(const std::string& path);

  // ssync: re-evaluate this directory and everything depending on it.
  Result<void> SSync(const std::string& path);

  // Full data-consistency pass: flush dirty documents into the index, then restore
  // scope consistency globally.
  Result<void> Reindex();

  // Same, restricted to files under `path` (plus the directories depending on it).
  Result<void> ReindexSubtree(const std::string& path);

  // sact: lines of the linked file that match the containing directory's query.
  Result<std::vector<std::string>> SAct(const std::string& link_path);

  // One-shot search: evaluates `query` over the files reachable from `scope_dir`
  // (its contents, recursively) without creating a semantic directory. Returns the
  // matching paths, sorted. The Table 4 "direct Glimpse search" counterpart.
  Result<std::vector<std::string>> Search(const std::string& query,
                                          const std::string& scope_dir = "/");

  // --- streaming reads (core/paging.h) ---
  //
  // Counts every acknowledged mutation: journaled user operations plus reindex
  // ingest/purge (reindexing settles deferred data consistency without
  // journaling). Monotone; a page sequence whose token epoch no longer matches
  // is refused with kStaleCursor.
  uint64_t MutationEpoch() const;

  // Paged ReadDir: the page of entries after `token` (nullptr = first page).
  // max_entries/max_bytes of 0 pick kDefaultPageEntries/kDefaultPageBytes;
  // entries are capped at kMaxPageEntries. Concatenating pages at a quiesced
  // epoch reproduces ReadDir exactly; an epoch mismatch returns kStaleCursor and
  // the caller restarts from the first page.
  Result<DirPageResult> ReadDirPage(const std::string& path, const PageToken* token,
                                    size_t max_entries = 0, size_t max_bytes = 0);

  // Paged Search: pulls the next page of matches lazily through a PostingCursor
  // tree (index/posting_cursor.h) instead of materializing the result bitmap.
  // Paths come back in DocId order; the union of pages at a quiesced epoch
  // equals Search() as a set. Token semantics as in ReadDirPage.
  Result<SearchPageResult> SearchPage(const std::string& query,
                                      const std::string& scope_dir,
                                      const PageToken* token,
                                      size_t max_results = 0, size_t max_bytes = 0);

  // smount (syntactic): graft `fs`'s subtree rooted at `remote_root` under `path`.
  Result<void> MountSyntactic(const std::string& path, FsInterface* fs,
                              const std::string& remote_root = "/");
  // smount (semantic): attach a name space at `path`; repeatable for multiple mounts.
  Result<void> MountSemantic(const std::string& path, NameSpace* space);
  Result<void> UnmountSyntactic(const std::string& path);
  Result<void> UnmountSemantic(const std::string& path);

  // --- batched mutation surface ---
  //
  // Mutations issued between BeginBatch() and the matching EndBatch() are coalesced:
  // scope propagation is deferred and EndBatch runs ONE multi-source topological pass
  // over everything the batch touched, instead of one pass per mutation. Readers that
  // observe link sets (ReadDir, Search, SSync, SAct, GetLinkClasses, ScopeOf,
  // DirectoryResultOf, Reindex, SaveState) force a flush first, so batching is never
  // observable — only cheaper. Open/StatPath/ReadLink do NOT flush, which keeps bulk
  // ingest inside a batch from defeating it. Nesting balances; only the outermost
  // EndBatch flushes. The eager engine propagates immediately and treats these as
  // no-ops (the paper's behavior). Prefer the RAII BatchScope below.
  void BeginBatch();
  Result<void> EndBatch();
  bool InBatch() const;
  ConsistencyMode consistency_mode() const { return engine_->mode(); }

  // --- propagation parallelism ---
  //
  // Point the consistency engine at an externally owned pool (the hacd service lends
  // its reader pool so batched write flushes propagate in parallel), or at nullptr /
  // width 1 to force serial passes. Replaces any pool configured via
  // HacOptions::parallelism for as long as it is set; the caller must outlive the
  // setting (HacService restores the previous pool in Stop()).
  void SetPropagationPool(ThreadPool* pool, size_t width) {
    engine_->SetParallelism(pool, width);
  }
  ThreadPool* propagation_pool() const { return engine_->parallel_pool(); }
  size_t propagation_width() const { return engine_->parallel_width(); }

  // --- link-class control (the paper's footnote-1 API) ---
  Result<LinkClassView> GetLinkClasses(const std::string& dir_path);
  // Promote a transient link to permanent so no query change can remove it.
  Result<void> PromoteLink(const std::string& link_path);
  // The inverse: hand a permanent link back to HAC as transient; the re-evaluation
  // this triggers removes it unless the directory's query still selects it.
  Result<void> DemoteLink(const std::string& link_path);
  // Prohibit a file in a directory: removes any existing link to it there and
  // guarantees HAC never re-adds it. Unlink of a transient link routes through the
  // same path (section 2.3's "deleted results stay deleted").
  Result<void> Prohibit(const std::string& dir_path, const std::string& file_path);
  // Forget a prohibition so the file may reappear as a transient link.
  Result<void> Unprohibit(const std::string& dir_path, const std::string& file_path);

  // --- process model (shared attribute cache, per-process descriptors) ---
  ProcessId CreateProcess();
  Result<void> SetCurrentProcess(ProcessId pid);
  ProcessId CurrentProcess() const { return current_process_; }

  // --- introspection ---
  FileSystem& vfs() { return vfs_; }
  const FileSystem& vfs() const { return vfs_; }
  CbaMechanism& index() { return *index_; }
  const FileRegistry& registry() const { return registry_; }
  const UidMap& uid_map() const { return uid_map_; }
  const DependencyGraph& dependency_graph() const { return graph_; }
  const MetadataJournal& journal() const { return journal_; }
  // Drains up to `max_records` buffered journal records (0 = all): the durability
  // layer moves them into the on-disk WAL at each group commit, bounding the
  // in-memory buffer.
  std::vector<JournalRecord> DrainJournal(size_t max_records = 0) {
    return journal_.Drain(max_records);
  }
  // Unified counter snapshot: facade counters plus the index and VFS component views.
  StatsSnapshot Stats() const;

  // Scope a directory provides to its children (syntactic directories inherit their
  // parent's scope in addition to their own contents).
  Result<Bitmap> ScopeOf(const std::string& dir_path);

  // What a dir() reference to this directory denotes: its current link set plus the
  // files physically inside it — no inheritance.
  Result<Bitmap> DirectoryResultOf(const std::string& dir_path);

  // Current absolute path of a registered document.
  Result<std::string> PathOfDoc(DocId doc) const;

  // HAC metadata footprint (per-dir metadata, UID map, dep graph, registry, mounts,
  // journal) — the paper's "222 KB vs 210 KB" measurement.
  size_t MetadataSizeBytes() const;
  // Shared-memory-equivalent footprint per process (attribute cache share + fd table).
  size_t SharedMemoryBytesPerProcess() const;

  // --- whole-state persistence (core/hac_persistence.cc) ---
  //
  // Saves the VFS image plus all durable HAC state: the file registry, every
  // directory's query and link classification (permanent/transient/prohibited).
  // Queries are saved in rendered form (current paths), so the UID map and dependency
  // graph are rebuilt at load and dir() references re-bind correctly. Mounts,
  // descriptor tables, the attribute cache and the journal are session state and are
  // not part of the image; the content index is rebuilt by a load-time reindex.
  std::vector<uint8_t> SaveState() const;
  static Result<std::unique_ptr<HacFileSystem>> LoadState(const std::vector<uint8_t>& image,
                                                          HacOptions options = {});

 private:
  friend class HacStateCodec;
  friend class ConsistencyEngine;

  struct Routed {
    FsInterface* fs;
    std::string path;
    bool local;
  };

  // Normalizes and routes a path through the syntactic mount table.
  Result<Routed> Route(const std::string& path) const;

  Result<DirMetadata*> MetaOfPath(const std::string& norm_path);
  Result<DirMetadata*> MetaOfUid(DirUid uid);
  Result<const DirMetadata*> MetaOfUid(DirUid uid) const;

  // Scope bitmap provided by a directory identified by uid (see ScopeOf). Const —
  // service readers derive scopes concurrently under the shared lock.
  Result<Bitmap> ScopeOfUid(DirUid uid) const;
  // Contents bitmap of a directory (see DirectoryResultOf).
  Result<Bitmap> DirContentsOfUid(DirUid uid) const;
  // DirContentsOfUid memoized on (uid, MutationEpoch): the search read path —
  // especially a paged drain, which re-derives the same scope once per
  // FetchPage — asks for identical bitmaps at a quiesced epoch. Mutex-guarded
  // because readers run concurrently under the service's shared lock.
  Result<Bitmap> CachedDirContents(DirUid uid) const;

  // Dependency set for a directory: its parent plus all dirs referenced by its query.
  Result<std::vector<DirUid>> ComputeDeps(DirUid uid, const std::string& norm_path,
                                          const QueryExpr* query);

  // --- consistency helpers (consistency.cc); propagation itself lives in the
  //     ConsistencyEngine (consistency_engine.cc) ---
  Result<void> ImportRemoteResults(const SemanticMount& mount, const QueryExpr& query);
  Result<void> FlushDirtyDocs(const std::string& subtree_root);
  void MaybeAutoReindex();
  void NoteContentMutation();

  // Shared prohibit path: removes `name`'s link record from `m` (and its symlink when
  // `unlink_vfs`), marks the doc prohibited, journals, and notifies the engine.
  Result<void> ProhibitTrackedLink(DirMetadata* m, const std::string& dir_path,
                                   const std::string& name, bool unlink_vfs);

  // Registers bookkeeping for a directory created locally at `norm_path`.
  Result<void> RegisterDirectory(const std::string& norm_path);

  // Strips dir() references (they are local concepts) for remote forwarding.
  static QueryExprPtr ContentOnly(const QueryExpr& query);

  HacOptions options_;
  FileSystem vfs_;
  std::unique_ptr<InvertedIndex> index_;
  FileRegistry registry_;
  UidMap uid_map_;
  DependencyGraph graph_;
  std::unordered_map<DirUid, DirMetadata> metadata_;
  MountTable mounts_;
  MetadataJournal journal_;
  AttributeCache attr_cache_;

  // Single-entry scope memo for CachedDirContents. Epoch-keyed, so any
  // journaled mutation or (re)index activity invalidates it implicitly.
  mutable std::mutex scope_memo_mu_;
  mutable DirUid scope_memo_uid_ = kInvalidDirUid;
  mutable uint64_t scope_memo_epoch_ = 0;
  mutable Bitmap scope_memo_;
  std::vector<HacFdTable> processes_;
  ProcessId current_process_ = 0;

  // Owned propagation helpers (options_.parallelism - 1 threads; null when serial).
  // Declared before engine_ so the pool outlives the engine that borrows it.
  std::unique_ptr<ThreadPool> propagation_pool_;
  std::unique_ptr<ConsistencyEngine> engine_;
  StatsSnapshot stats_;
  uint64_t content_mutations_since_reindex_ = 0;
  uint64_t last_reindex_tick_ = 0;
  bool batch_had_content_mutation_ = false;  // auto-reindex check deferred to EndBatch
};

// RAII form of the batch API: opens a batch on construction, closes it on scope exit.
// Call Commit() to observe the flush's status; the destructor swallows it otherwise.
class BatchScope {
 public:
  explicit BatchScope(HacFileSystem& fs) : fs_(&fs) { fs_->BeginBatch(); }
  ~BatchScope() {
    if (fs_ != nullptr) {
      (void)fs_->EndBatch();
    }
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  // Ends the batch now and reports the flush's result.
  Result<void> Commit() {
    HacFileSystem* fs = fs_;
    fs_ = nullptr;
    return fs->EndBatch();
  }

 private:
  HacFileSystem* fs_;
};

}  // namespace hac

#endif  // HAC_CORE_HAC_FILE_SYSTEM_H_
