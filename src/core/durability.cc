#include "src/core/durability.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/support/serializer.h"
#include "src/vfs/types.h"

namespace hac {

namespace fs_std = std::filesystem;

namespace {

constexpr uint32_t kCheckpointMagic = 0x4841434B;  // "HACK"
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".hacs";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";

Counter& WalAppendsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityWalAppends);
  return c;
}
Counter& WalBytesCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityWalBytes);
  return c;
}
Counter& CheckpointsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityCheckpoints);
  return c;
}
Counter& RecoveriesCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityRecoveries);
  return c;
}
Counter& ReplayedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityReplayedRecords);
  return c;
}
Counter& CorruptFramesCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter(metric_names::kDurabilityCorruptFrames);
  return c;
}
Histogram& FsyncHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().GetHistogram(metric_names::kDurabilityFsyncUs, "us");
  return h;
}
Histogram& CheckpointHistogram() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      metric_names::kDurabilityCheckpointUs, "us");
  return h;
}
Histogram& RecoveryHistogram() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      metric_names::kDurabilityRecoveryUs, "us");
  return h;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

std::string GenerationFileName(const char* prefix, uint64_t lsn, const char* suffix) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(lsn));
  return std::string(prefix) + hex + suffix;
}

Result<void> SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound, dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Error(ErrorCode::kBusy, "fsync " + dir + ": " + std::strerror(errno));
  }
  return OkResult();
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kNotFound, path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

FaultSpec FaultSpec::Parse(const std::string& spec) {
  FaultSpec out;
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return out;
  }
  std::string kind = spec.substr(0, colon);
  out.at_write = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  if (kind == "crash_after") {
    out.kind = Kind::kCrashAfter;
  } else if (kind == "torn") {
    out.kind = Kind::kTorn;
  } else if (kind == "bitflip") {
    out.kind = Kind::kBitFlip;
  }
  return out;
}

FaultSpec FaultSpec::FromEnv() {
  const char* env = std::getenv("HAC_WAL_FAULT");
  return env != nullptr ? Parse(env) : FaultSpec{};
}

// ---------------------------------------------------------------------------
// RealFile
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RealFile>> RealFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound, path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RealFile>(new RealFile(fd));
}

RealFile::~RealFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<void> RealFile::Append(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t put = ::write(fd_, p, n);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Error(ErrorCode::kBusy, std::string("write: ") + std::strerror(errno));
    }
    p += put;
    n -= static_cast<size_t>(put);
  }
  return OkResult();
}

Result<void> RealFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Error(ErrorCode::kBusy, std::string("fsync: ") + std::strerror(errno));
  }
  return OkResult();
}

// ---------------------------------------------------------------------------
// FaultyFile
// ---------------------------------------------------------------------------

FaultyFile::FaultyFile(const std::string& path, FaultSpec fault)
    : path_(path), fault_(fault) {}

Result<void> FaultyFile::FlushToDisk(const uint8_t* data, size_t n) {
  HAC_ASSIGN_OR_RETURN(std::unique_ptr<RealFile> f, RealFile::Open(path_));
  if (n > 0) {
    HAC_RETURN_IF_ERROR(f->Append(data, n));
  }
  return f->Sync();
}

Result<void> FaultyFile::Append(const void* data, size_t n) {
  if (dead_) {
    return OkResult();  // the modelled process is gone; nothing observes this write
  }
  ++writes_;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  if (fault_.kind == FaultSpec::Kind::kTorn && writes_ == fault_.at_write) {
    // The kernel flushed everything buffered plus half of this frame, then the
    // machine died: the log ends in a torn frame.
    std::vector<uint8_t> torn(unsynced_);
    torn.insert(torn.end(), bytes, bytes + n / 2);
    HAC_RETURN_IF_ERROR(FlushToDisk(torn.data(), torn.size()));
    unsynced_.clear();
    dead_ = true;
    return OkResult();
  }
  unsynced_.insert(unsynced_.end(), bytes, bytes + n);
  if (fault_.kind == FaultSpec::Kind::kBitFlip && writes_ == fault_.at_write &&
      !unsynced_.empty()) {
    // Silent media corruption: one bit of the just-buffered frame flips and the
    // write path never notices — only the CRC check at recovery does.
    unsynced_[unsynced_.size() - 1 - n / 2] ^= 0x10;
  }
  if (fault_.kind == FaultSpec::Kind::kCrashAfter && writes_ >= fault_.at_write) {
    // Crash before the fsync: the buffered ("page cache") suffix is lost.
    unsynced_.clear();
    dead_ = true;
  }
  return OkResult();
}

Result<void> FaultyFile::Sync() {
  if (dead_) {
    return Error(ErrorCode::kBusy, "wal: injected crash (" + path_ + ")");
  }
  HAC_RETURN_IF_ERROR(FlushToDisk(unsynced_.data(), unsynced_.size()));
  unsynced_.clear();
  return OkResult();
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

void DurableStore::EncodeFrame(uint64_t lsn, const JournalRecord& rec,
                               std::vector<uint8_t>& out) {
  ByteWriter payload;
  payload.PutVarint(lsn);
  payload.PutU8(static_cast<uint8_t>(rec.op));
  payload.PutVarint(rec.subject);
  payload.PutString(rec.a);
  payload.PutString(rec.b);
  const std::vector<uint8_t>& body = payload.buffer();
  ByteWriter header;
  header.PutU32(static_cast<uint32_t>(body.size()));
  header.PutU32(Crc32(body.data(), body.size()));
  out.insert(out.end(), header.buffer().begin(), header.buffer().end());
  out.insert(out.end(), body.begin(), body.end());
}

std::vector<DurableStore::DecodedFrame> DurableStore::DecodeFrames(
    const std::vector<uint8_t>& bytes, bool* truncated, std::string* detail) {
  std::vector<DecodedFrame> out;
  if (truncated != nullptr) {
    *truncated = false;
  }
  auto stop = [&](const std::string& why) {
    if (truncated != nullptr) {
      *truncated = true;
    }
    if (detail != nullptr) {
      *detail = why;
    }
    CorruptFramesCounter().Inc();
  };
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    if (r.remaining() < 8) {
      stop("torn frame header (" + std::to_string(r.remaining()) + " trailing bytes)");
      break;
    }
    auto len = r.GetU32();
    auto crc = r.GetU32();
    if (!len.ok() || !crc.ok() || len.value() > r.remaining()) {
      stop("truncated frame body (want " +
           std::to_string(len.ok() ? len.value() : 0) + " bytes, have " +
           std::to_string(r.remaining()) + ")");
      break;
    }
    std::vector<uint8_t> body(len.value());
    if (!r.GetBytes(body.data(), body.size()).ok()) {
      stop("truncated frame body");
      break;
    }
    if (Crc32(body.data(), body.size()) != crc.value()) {
      stop("crc mismatch at frame " + std::to_string(out.size()));
      break;
    }
    ByteReader b(body.data(), body.size());
    DecodedFrame frame;
    auto lsn = b.GetVarint();
    auto op = b.GetU8();
    auto subject = op.ok() ? b.GetVarint() : Result<uint64_t>(op.error());
    auto a = subject.ok() ? b.GetString() : Result<std::string>(subject.error());
    auto bb = a.ok() ? b.GetString() : Result<std::string>(a.error());
    if (!lsn.ok() || !bb.ok() || op.value() == 0 ||
        op.value() > static_cast<uint8_t>(kMaxJournalOp)) {
      stop("malformed frame payload at frame " + std::to_string(out.size()));
      break;
    }
    frame.lsn = lsn.value();
    frame.record.op = static_cast<JournalOp>(op.value());
    frame.record.subject = subject.value();
    frame.record.a = std::move(a).value();
    frame.record.b = std::move(bb).value();
    out.push_back(std::move(frame));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

Result<void> DurableStore::ApplyRecord(HacFileSystem& fs, const JournalRecord& rec) {
  switch (rec.op) {
    case JournalOp::kDirCreated: {
      Result<void> s = fs.Mkdir(rec.a);
      if (!s.ok() && s.code() == ErrorCode::kAlreadyExists) {
        return OkResult();
      }
      return s;
    }
    case JournalOp::kDirRemoved:
      return fs.Rmdir(rec.a);
    case JournalOp::kFileRegistered: {
      HAC_ASSIGN_OR_RETURN(Fd fd, fs.Open(rec.a, kOpenWrite | kOpenCreate));
      return fs.Close(fd);
    }
    case JournalOp::kQuerySet:
      return fs.SetQuery(rec.a, rec.b);
    case JournalOp::kRename:
      return fs.Rename(rec.a, rec.b);
    case JournalOp::kFileWritten: {
      HAC_ASSIGN_OR_RETURN(Fd fd, fs.Open(rec.a, kOpenWrite | kOpenCreate));
      Result<uint64_t> seek = fs.Seek(fd, rec.subject);
      Result<size_t> put =
          seek.ok() ? fs.Write(fd, rec.b.data(), rec.b.size()) : Result<size_t>(seek.error());
      HAC_RETURN_IF_ERROR(fs.Close(fd));
      if (!put.ok()) {
        return put.error();
      }
      return OkResult();
    }
    case JournalOp::kFileTruncated: {
      HAC_ASSIGN_OR_RETURN(Fd fd, fs.Open(rec.a, kOpenWrite | kOpenTruncate));
      return fs.Close(fd);
    }
    case JournalOp::kUnlinked:
      return fs.Unlink(rec.a);
    case JournalOp::kSymlinked:
      return fs.Symlink(rec.b, rec.a);
    case JournalOp::kLinkPromoted:
      return fs.PromoteLink(rec.a);
    case JournalOp::kLinkDemoted:
      return fs.DemoteLink(rec.a);
    case JournalOp::kProhibitAdded:
      return fs.Prohibit(rec.a, rec.b);
    case JournalOp::kProhibitCleared:
      return fs.Unprohibit(rec.a, rec.b);
    case JournalOp::kFileDeactivated:
    case JournalOp::kLinkAdded:
    case JournalOp::kLinkRemoved:
    case JournalOp::kMount:
    case JournalOp::kUnmount:
      return OkResult();  // bookkeeping echo: replay re-derives this state
  }
  return OkResult();
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

DurableStore::DurableStore(DurabilityOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(DurabilityOptions options) {
  if (options.data_dir.empty()) {
    return Error(ErrorCode::kInvalidArgument, "durability needs a data_dir");
  }
  std::error_code ec;
  fs_std::create_directories(options.data_dir, ec);
  if (ec) {
    return Error(ErrorCode::kInvalidArgument,
                 options.data_dir + ": " + ec.message());
  }
  return std::unique_ptr<DurableStore>(new DurableStore(std::move(options)));
}

std::vector<std::pair<uint64_t, std::string>> DurableStore::ListGeneration(
    const std::string& prefix, const std::string& suffix) const {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs_std::directory_iterator(options_.data_dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() != prefix.size() + 16 + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    uint64_t lsn = std::strtoull(name.c_str() + prefix.size(), nullptr, 16);
    out.emplace_back(lsn, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

Result<void> DurableStore::OpenWalSegment(uint64_t start_lsn) {
  wal_start_lsn_ = start_lsn;
  wal_path_ = (fs_std::path(options_.data_dir) /
               GenerationFileName(kWalPrefix, start_lsn, kWalSuffix))
                  .string();
  if (options_.wal_fault.active()) {
    wal_ = std::make_unique<FaultyFile>(wal_path_, options_.wal_fault);
    return OkResult();
  }
  HAC_ASSIGN_OR_RETURN(std::unique_ptr<RealFile> f, RealFile::Open(wal_path_));
  wal_ = std::move(f);
  return OkResult();
}

Result<std::unique_ptr<HacFileSystem>> DurableStore::Recover(HacOptions fs_options) {
  const auto started = std::chrono::steady_clock::now();
  recovery_ = RecoveryInfo{};

  // 1. Newest checkpoint that validates end to end; older generations are the
  // fallback for a checkpoint torn mid-write (its rename never happened, or the
  // image fails its CRC).
  std::unique_ptr<HacFileSystem> fs;
  for (const auto& [lsn, path] : ListGeneration(kCheckpointPrefix, kCheckpointSuffix)) {
    auto bytes = ReadWholeFile(path);
    if (!bytes.ok()) {
      continue;
    }
    ByteReader r(bytes.value());
    auto magic = r.GetU32();
    auto version = r.GetU32();
    auto cp_lsn = r.GetU64();
    auto crc = r.GetU32();
    auto len = r.GetVarint();
    if (!magic.ok() || magic.value() != kCheckpointMagic || !version.ok() ||
        version.value() != kCheckpointVersion || !cp_lsn.ok() || !crc.ok() ||
        !len.ok() || len.value() != r.remaining()) {
      CorruptFramesCounter().Inc();
      continue;
    }
    std::vector<uint8_t> image(len.value());
    if (!r.GetBytes(image.data(), image.size()).ok() ||
        Crc32(image.data(), image.size()) != crc.value()) {
      CorruptFramesCounter().Inc();
      continue;
    }
    auto loaded = HacFileSystem::LoadState(image, fs_options);
    if (!loaded.ok()) {
      CorruptFramesCounter().Inc();
      continue;
    }
    fs = std::move(loaded).value();
    recovery_.checkpoint_lsn = cp_lsn.value();
    recovery_.checkpoint_file = path;
    break;
  }
  if (fs == nullptr) {
    fs = std::make_unique<HacFileSystem>(fs_options);
  }

  // 2. Replay the log tail in segment order, skipping frames the checkpoint
  // already covers, stopping at the first invalid frame. A segment that stops
  // early is repaired to its valid prefix and everything after it is dropped, so
  // post-recovery appends never hide behind a corrupt frame.
  auto segments = ListGeneration(kWalPrefix, kWalSuffix);
  std::sort(segments.begin(), segments.end());  // ascending for replay
  uint64_t max_lsn = recovery_.checkpoint_lsn;
  bool stopped = false;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [seg_lsn, seg_path] = segments[i];
    if (stopped) {
      std::error_code ec;
      fs_std::remove(seg_path, ec);
      continue;
    }
    auto bytes = ReadWholeFile(seg_path);
    if (!bytes.ok()) {
      continue;
    }
    bool truncated = false;
    std::string detail;
    std::vector<DecodedFrame> frames = DecodeFrames(bytes.value(), &truncated, &detail);
    for (const DecodedFrame& frame : frames) {
      max_lsn = std::max(max_lsn, frame.lsn);
      if (frame.lsn <= recovery_.checkpoint_lsn) {
        ++recovery_.skipped_records;
        continue;
      }
      Result<void> applied = ApplyRecord(*fs, frame.record);
      if (applied.ok()) {
        ++recovery_.replayed_records;
      } else {
        ++recovery_.replay_errors;
      }
    }
    if (truncated) {
      stopped = true;
      recovery_.tail_truncated = true;
      recovery_.detail = seg_path + ": " + detail;
      // Rewrite the segment as its valid prefix (frames re-encode byte-identically).
      std::vector<uint8_t> repaired;
      for (const DecodedFrame& frame : frames) {
        EncodeFrame(frame.lsn, frame.record, repaired);
      }
      std::error_code ec;
      fs_std::remove(seg_path, ec);
      auto f = RealFile::Open(seg_path);
      if (f.ok()) {
        (void)f.value()->Append(repaired.data(), repaired.size());
        (void)f.value()->Sync();
      }
    }
  }

  // 3. Settle data consistency, then discard the bookkeeping the replay itself
  // journalled — those mutations are already in the log.
  if (recovery_.replayed_records > 0) {
    HAC_RETURN_IF_ERROR(fs->Reindex());
  }
  (void)fs->DrainJournal();

  last_lsn_ = max_lsn;
  last_checkpoint_lsn_ = recovery_.checkpoint_lsn;
  records_since_checkpoint_ = recovery_.replayed_records;
  bytes_since_checkpoint_ = 0;
  // Continue in the newest surviving segment (or start the genesis one).
  uint64_t segment = recovery_.checkpoint_lsn;
  for (const auto& [seg_lsn, seg_path] : ListGeneration(kWalPrefix, kWalSuffix)) {
    segment = std::max(segment, seg_lsn);
    break;  // newest-first listing
  }
  HAC_RETURN_IF_ERROR(OpenWalSegment(segment));

  RecoveriesCounter().Inc();
  ReplayedCounter().Inc(recovery_.replayed_records);
  RecoveryHistogram().Record(ElapsedUs(started));
  return fs;
}

Result<void> DurableStore::CommitFrom(HacFileSystem& fs) {
  if (wal_ == nullptr) {
    HAC_RETURN_IF_ERROR(OpenWalSegment(last_checkpoint_lsn_));
  }
  std::vector<JournalRecord> records = fs.DrainJournal();
  uint64_t appended = 0;
  uint64_t bytes = 0;
  for (const JournalRecord& rec : records) {
    if (!IsReplayableOp(rec.op)) {
      continue;
    }
    std::vector<uint8_t> frame;
    EncodeFrame(++last_lsn_, rec, frame);
    HAC_RETURN_IF_ERROR(wal_->Append(frame.data(), frame.size()));
    ++appended;
    bytes += frame.size();
  }
  if (appended == 0) {
    return OkResult();  // read-only batch: no fsync needed
  }
  const auto fsync_started = std::chrono::steady_clock::now();
  HAC_RETURN_IF_ERROR(wal_->Sync());
  FsyncHistogram().Record(ElapsedUs(fsync_started));
  WalAppendsCounter().Inc(appended);
  WalBytesCounter().Inc(bytes);
  records_since_checkpoint_ += appended;
  bytes_since_checkpoint_ += bytes;
  return OkResult();
}

bool DurableStore::ShouldCheckpoint() const {
  return (options_.checkpoint_interval_records != 0 &&
          records_since_checkpoint_ >= options_.checkpoint_interval_records) ||
         (options_.checkpoint_interval_bytes != 0 &&
          bytes_since_checkpoint_ >= options_.checkpoint_interval_bytes);
}

Result<void> DurableStore::Checkpoint(HacFileSystem& fs) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<uint8_t> image = fs.SaveState();
  const uint64_t lsn = last_lsn_;

  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(lsn);
  w.PutU32(Crc32(image.data(), image.size()));
  w.PutVarint(image.size());
  w.PutBytes(image.data(), image.size());

  // Write-temp, fsync, rename, fsync-dir: readers only ever see a complete image
  // under the final name. The temp file stays a RealFile even under fault
  // injection — the crash matrix injects checkpoint damage separately.
  const std::string final_path =
      (fs_std::path(options_.data_dir) /
       GenerationFileName(kCheckpointPrefix, lsn, kCheckpointSuffix))
          .string();
  const std::string tmp_path = final_path + ".tmp";
  {
    HAC_ASSIGN_OR_RETURN(std::unique_ptr<RealFile> f, RealFile::Open(tmp_path));
    HAC_RETURN_IF_ERROR(f->Append(w.buffer().data(), w.buffer().size()));
    HAC_RETURN_IF_ERROR(f->Sync());
  }
  std::error_code ec;
  fs_std::rename(tmp_path, final_path, ec);
  if (ec) {
    return Error(ErrorCode::kBusy, "rename " + tmp_path + ": " + ec.message());
  }
  HAC_RETURN_IF_ERROR(SyncDirectory(options_.data_dir));

  last_checkpoint_lsn_ = lsn;
  records_since_checkpoint_ = 0;
  bytes_since_checkpoint_ = 0;
  // Rotate the log: frames after this checkpoint land in a fresh segment, so
  // pruning can drop whole files once two newer checkpoints exist.
  HAC_RETURN_IF_ERROR(OpenWalSegment(lsn));
  HAC_RETURN_IF_ERROR(PruneGenerations());

  CheckpointsCounter().Inc();
  CheckpointHistogram().Record(ElapsedUs(started));
  return OkResult();
}

Result<void> DurableStore::PruneGenerations() {
  // Keep the two newest checkpoints; everything the older of the two no longer
  // needs — older checkpoints, and WAL segments fully covered by it — goes.
  auto checkpoints = ListGeneration(kCheckpointPrefix, kCheckpointSuffix);
  if (checkpoints.size() < 2) {
    return OkResult();
  }
  const uint64_t keep_from = checkpoints[1].first;  // older retained generation
  std::error_code ec;
  for (size_t i = 2; i < checkpoints.size(); ++i) {
    fs_std::remove(checkpoints[i].second, ec);
  }
  for (const auto& [seg_lsn, seg_path] : ListGeneration(kWalPrefix, kWalSuffix)) {
    if (seg_lsn < keep_from) {
      fs_std::remove(seg_path, ec);
    }
  }
  return OkResult();
}

}  // namespace hac
