// Mount table for syntactic and semantic mount points (section 3).
//
// Syntactic mounts graft a foreign FsInterface under a local path: pure name-based
// access, nothing is indexed. Semantic mounts attach one or more NameSpaces to a local
// directory: queries evaluated under the mount are forwarded and the results imported.
// The two are deliberately independent — that is the paper's "decoupling" of name-based
// from content-based access.
#ifndef HAC_CORE_MOUNT_TABLE_H_
#define HAC_CORE_MOUNT_TABLE_H_

#include <string>
#include <vector>

#include "src/remote/name_space.h"
#include "src/support/result.h"
#include "src/vfs/fs_interface.h"

namespace hac {

struct SyntacticMount {
  std::string mount_path;   // local directory the foreign tree appears under
  FsInterface* fs = nullptr;
  std::string remote_root;  // path inside `fs` that corresponds to mount_path
};

struct SemanticMount {
  std::string mount_path;
  std::string language;               // query language shared by all name spaces
  std::vector<NameSpace*> spaces;     // not owned
};

class MountTable {
 public:
  // Registers a syntactic mount. Nested syntactic mounts are rejected for simplicity.
  Result<void> AddSyntactic(const std::string& mount_path, FsInterface* fs,
                            const std::string& remote_root);

  // Attaches `space` at `mount_path`; creates the semantic mount on first use. All
  // spaces on one mount must share a query language (kLanguageMismatch otherwise).
  Result<void> AddSemantic(const std::string& mount_path, NameSpace* space);

  Result<void> RemoveSyntactic(const std::string& mount_path);
  Result<void> RemoveSemantic(const std::string& mount_path);

  // Longest-prefix syntactic mount covering `path`. The mount directory itself is
  // covered (listing it shows the mounted tree, like a POSIX mount).
  const SyntacticMount* FindSyntacticCovering(const std::string& path) const;

  // Semantic mount rooted exactly at `path`.
  const SemanticMount* FindSemanticAt(const std::string& path) const;

  // Rewrites mount paths after a directory rename.
  void RenameSubtree(const std::string& from, const std::string& to);

  const std::vector<SyntacticMount>& syntactic() const { return syntactic_; }
  const std::vector<SemanticMount>& semantic() const { return semantic_; }

  size_t SizeBytes() const;

 private:
  std::vector<SyntacticMount> syntactic_;
  std::vector<SemanticMount> semantic_;
};

}  // namespace hac

#endif  // HAC_CORE_MOUNT_TABLE_H_
