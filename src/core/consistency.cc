// Consistency helpers shared by both engines: scope/contents derivation, dependency
// computation, remote import, and the deferred data-consistency pass (section 2.4).
// The propagation algorithms themselves live in core/consistency_engine.cc.
//
// Invariant maintained for every semantic directory sd with parent p:
//   transient(sd) == Eval(query(sd)) ∩ scope(p)  −  permanent(sd)  −  prohibited(sd)
// where scope(p) is p's current link set plus the files physically under p.
#include <algorithm>
#include <cctype>

#include "src/core/hac_file_system.h"
#include "src/index/query_optimizer.h"
#include "src/support/metric_names.h"
#include "src/support/metrics.h"
#include "src/vfs/path.h"

namespace hac {

namespace {

struct ReindexMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& docs_indexed = reg.GetCounter(metric_names::kReindexDocsIndexed);
  Counter& docs_purged = reg.GetCounter(metric_names::kReindexDocsPurged);
  Counter& auto_reindexes = reg.GetCounter(metric_names::kReindexAuto);
  Counter& remote_searches = reg.GetCounter(metric_names::kRemoteSearches);
  Counter& remote_imports = reg.GetCounter(metric_names::kRemoteImports);
};

ReindexMetrics& GM() {
  static ReindexMetrics* m = new ReindexMetrics();
  return *m;
}

}  // namespace

Result<Bitmap> HacFileSystem::DirContentsOfUid(DirUid uid) const {
  // What a dir(X) reference denotes: X's current (edited) link set plus the files
  // physically inside X's subtree — nothing inherited.
  HAC_ASSIGN_OR_RETURN(std::string path, uid_map_.PathOf(uid));
  HAC_ASSIGN_OR_RETURN(const DirMetadata* meta, MetaOfUid(uid));
  Bitmap contents = meta->links.LinkSet();
  contents |= registry_.FilesWithin(path);
  return contents;
}

Result<Bitmap> HacFileSystem::ScopeOfUid(DirUid uid) const {
  // What a directory PROVIDES to semantic children. Semantic directories provide
  // exactly their contents (the paper's refinement rule); the root provides everything.
  // Plain syntactic directories are scope-transparent: they pass their parent's scope
  // through in addition to their own contents, so a semantic directory created inside
  // any ordinary folder still searches what the enclosing hierarchy provides (the
  // paper pins down only the root and semantic parents; this completes the rule for
  // the case in between).
  HAC_ASSIGN_OR_RETURN(Bitmap scope, DirContentsOfUid(uid));
  HAC_ASSIGN_OR_RETURN(const DirMetadata* meta, MetaOfUid(uid));
  HAC_ASSIGN_OR_RETURN(std::string path, uid_map_.PathOf(uid));
  // Semantic mount points provide only what lives under them (local files plus cached
  // imports) — inheriting the whole local hierarchy would leak it into remote views.
  if (!meta->IsSemantic() && uid != uid_map_.root_uid() &&
      mounts_.FindSemanticAt(path) == nullptr) {
    HAC_ASSIGN_OR_RETURN(DirUid parent, uid_map_.UidOf(DirName(path)));
    HAC_ASSIGN_OR_RETURN(Bitmap inherited, ScopeOfUid(parent));
    scope |= inherited;
  }
  return scope;
}

Result<std::vector<DirUid>> HacFileSystem::ComputeDeps(DirUid uid,
                                                       const std::string& norm_path,
                                                       const QueryExpr* query) {
  std::vector<DirUid> deps;
  if (uid != uid_map_.root_uid()) {
    HAC_ASSIGN_OR_RETURN(DirUid parent, uid_map_.UidOf(DirName(norm_path)));
    deps.push_back(parent);
  }
  if (query != nullptr) {
    for (DirUid ref : query->ReferencedDirs()) {
      deps.push_back(ref);
    }
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

QueryExprPtr HacFileSystem::ContentOnly(const QueryExpr& query) {
  QueryExprPtr out = query.Clone();
  std::vector<QueryExpr*> refs;
  out->CollectDirRefs(refs);
  for (QueryExpr* ref : refs) {
    // dir() references are local; remotely every document passes this conjunct.
    ref->kind = QueryKind::kAll;
    ref->text.clear();
    ref->dir_uid = kInvalidDirUid;
  }
  return out;
}

Result<void> HacFileSystem::ImportRemoteResults(const SemanticMount& mount,
                                                const QueryExpr& query) {
  QueryExprPtr content = ContentOnly(query);
  for (NameSpace* space : mount.spaces) {
    ++stats_.remote_searches;
    GM().remote_searches.Inc();
    HAC_ASSIGN_OR_RETURN(std::vector<RemoteDoc> docs, space->Search(*content));
    if (docs.empty()) {
      continue;
    }
    std::string cache_dir = JoinPath(mount.mount_path == "/" ? "" : mount.mount_path,
                                     ".remote");
    cache_dir = JoinPath(cache_dir, space->Name());
    HAC_RETURN_IF_ERROR(MkdirAll(cache_dir));
    for (const RemoteDoc& doc : docs) {
      std::string key = mount.mount_path + "\x1f" + space->Name() + "\x1f" + doc.handle;
      if (registry_.FindRemote(key).ok()) {
        continue;  // already imported
      }
      HAC_ASSIGN_OR_RETURN(std::string body, space->Fetch(doc.handle));
      // Cached file name: sanitized title + sanitized handle for uniqueness.
      auto sanitize = [](const std::string& s, size_t cap) {
        std::string out;
        for (char c : s) {
          out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
        }
        if (out.size() > cap) {
          out.resize(cap);
        }
        return out;
      };
      std::string base = sanitize(doc.title, 48);
      std::string suffix = sanitize(doc.handle, 48);
      std::string name = base.empty() ? suffix : base + "_" + suffix;
      std::string cache_path = JoinPath(cache_dir, name);
      for (int n = 2; vfs_.Exists(cache_path); ++n) {
        cache_path = JoinPath(cache_dir, name + "~" + std::to_string(n));
      }
      HAC_RETURN_IF_ERROR(vfs_.WriteFile(cache_path, body));
      HAC_ASSIGN_OR_RETURN(InodeId inode, vfs_.Lookup(cache_path));
      HAC_ASSIGN_OR_RETURN(DocId id, registry_.AddRemote(inode, cache_path, key));
      HAC_RETURN_IF_ERROR(index_->IndexDocument(id, body));
      registry_.ClearDirty(id);
      engine_->NoteDocChanged(id);
      ++stats_.remote_imports;
      ++stats_.docs_indexed;
      GM().remote_imports.Inc();
      GM().docs_indexed.Inc();
    }
  }
  return OkResult();
}

Result<void> HacFileSystem::FlushDirtyDocs(const std::string& subtree_root) {
  for (DocId doc : registry_.DirtyDocs()) {
    const FileRecord* rec = registry_.Get(doc);
    if (rec == nullptr) {
      continue;
    }
    if (!PathIsWithin(rec->path, subtree_root)) {
      continue;
    }
    if (!rec->alive) {
      if (index_->RemoveDocument(doc).ok()) {
        ++stats_.docs_purged;
        GM().docs_purged.Inc();
      }
      registry_.ClearDirty(doc);
      engine_->NoteDocChanged(doc);
      continue;
    }
    // Content is read through HAC's own call surface (descriptor table, attribute
    // cache), exactly as the paper's prototype drives Glimpse through the HAC library.
    auto body = ReadFileToString(rec->path);
    if (!body.ok()) {
      continue;  // transiently unreadable; stays dirty
    }
    HAC_RETURN_IF_ERROR(index_->IndexDocument(doc, body.value()));
    ++stats_.docs_indexed;
    GM().docs_indexed.Inc();
    registry_.ClearDirty(doc);
    engine_->NoteDocChanged(doc);
  }
  return OkResult();
}

Result<void> HacFileSystem::Reindex() {
  HAC_RETURN_IF_ERROR(FlushDirtyDocs("/"));
  HAC_RETURN_IF_ERROR(engine_->PropagateAll());
  content_mutations_since_reindex_ = 0;
  last_reindex_tick_ = vfs_.clock().Now();
  return OkResult();
}

Result<void> HacFileSystem::ReindexSubtree(const std::string& path) {
  std::string norm = NormalizePath(path);
  if (norm.empty()) {
    return Error(ErrorCode::kInvalidArgument, "path must be absolute: " + path);
  }
  HAC_ASSIGN_OR_RETURN(DirUid uid, uid_map_.UidOf(norm));
  HAC_RETURN_IF_ERROR(FlushDirtyDocs(norm));
  return engine_->SyncFrom(uid);
}

void HacFileSystem::MaybeAutoReindex() {
  const SyncPolicy& policy = options_.sync_policy;
  bool due = false;
  switch (policy.mode) {
    case SyncMode::kManual:
      break;
    case SyncMode::kEveryNMutations:
      due = policy.n > 0 && content_mutations_since_reindex_ >= policy.n;
      break;
    case SyncMode::kIntervalTicks:
      due = policy.n > 0 && vfs_.clock().Now() - last_reindex_tick_ >= policy.n;
      break;
    case SyncMode::kImmediate:
      due = true;
      break;
  }
  if (due && !engine_->InPass() && !engine_->InBatch()) {
    ++stats_.auto_reindexes;
    GM().auto_reindexes.Inc();
    (void)Reindex();
  }
}

}  // namespace hac
