// Crash-safe persistence for HacFileSystem: on-disk write-ahead log, atomic
// checkpoints, and recovery.
//
// The in-memory MetadataJournal models the paper's synchronous metadata writes; this
// layer makes them real. The contract (documented in full in docs/DURABILITY.md):
//
//   * WAL — every replayable JournalRecord (see IsReplayableOp) is drained from the
//     facade's journal at each group commit and appended to the current WAL segment
//     as a length-prefixed, CRC32-framed record tagged with a monotone LSN. The
//     segment is fsynced once per commit; CommitFrom() returns only after the frames
//     are durable, so the service layer can acknowledge the batch.
//   * Checkpoint — Checkpoint() persists the facade's full SaveState() image (VFS +
//     registry + per-directory state + index snapshot) atomically: write to a temp
//     file, fsync, rename into place, fsync the directory. It then starts a fresh
//     WAL segment and prunes segments and checkpoint generations no longer needed
//     (the newest two checkpoints are retained, so a crash that tears the newest one
//     still recovers from its predecessor plus the surviving log).
//   * Recovery — Recover() loads the newest checkpoint that validates (magic,
//     version, CRC), falls back to older generations or an empty file system, then
//     replays the WAL tail in LSN order through the public facade API, skipping
//     records at or below the checkpoint LSN and stopping cleanly at the first
//     torn, truncated, or CRC-corrupt frame (ErrorCode::kCorrupt semantics: the
//     damaged suffix is discarded, everything before it is served). A final
//     Reindex() restores data consistency.
//
// Fault injection: DurableFile is the seam. FaultyFile buffers writes until Sync()
// (modelling the volatile page cache) and can crash after N writes, tear the final
// frame in half, or flip a bit — driven programmatically or via the HAC_WAL_FAULT
// environment variable ("crash_after:N" | "torn:N" | "bitflip:N"). The recovery test
// matrix in tests/core/durability_test.cc is built on it.
#ifndef HAC_CORE_DURABILITY_H_
#define HAC_CORE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hac_file_system.h"

namespace hac {

// IEEE CRC-32 (the zlib polynomial), table-driven. Seed 0; not reflected-output
// tricks — the value only ever meets its own producer.
uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

struct FaultSpec {
  enum class Kind : uint8_t {
    kNone = 0,
    kCrashAfter,  // after N writes, drop unsynced data and go dead (crash pre-fsync)
    kTorn,        // on write N, persist only the first half of it, then go dead
    kBitFlip,     // on write N, flip one bit in the persisted bytes, then continue
  };
  Kind kind = Kind::kNone;
  uint64_t at_write = 0;

  bool active() const { return kind != Kind::kNone; }

  // Parses "crash_after:N" / "torn:N" / "bitflip:N" (empty or unknown -> kNone).
  static FaultSpec Parse(const std::string& spec);
  // Reads the HAC_WAL_FAULT environment variable.
  static FaultSpec FromEnv();
};

// Append-only file abstraction the WAL and checkpoint writers go through.
class DurableFile {
 public:
  virtual ~DurableFile() = default;
  // Buffers or writes `n` bytes at the end of the file.
  virtual Result<void> Append(const void* data, size_t n) = 0;
  // Makes every appended byte durable. CommitFrom() acknowledges only after this.
  virtual Result<void> Sync() = 0;
};

// Production file: POSIX append + fsync.
class RealFile : public DurableFile {
 public:
  static Result<std::unique_ptr<RealFile>> Open(const std::string& path);
  ~RealFile() override;
  Result<void> Append(const void* data, size_t n) override;
  Result<void> Sync() override;

 private:
  explicit RealFile(int fd) : fd_(fd) {}
  int fd_;
};

// Fault-injecting file. Writes accumulate in a volatile buffer ("page cache") and
// reach the backing file only at Sync() — so a crash before fsync deterministically
// loses exactly the unsynced suffix, which a real kernel page cache would hide from
// a same-machine test. When the configured fault fires the file goes dead: the
// on-disk state is frozen in its crash shape and later appends/syncs are swallowed
// (the "process" has crashed; the service notices via the next commit's error).
class FaultyFile : public DurableFile {
 public:
  FaultyFile(const std::string& path, FaultSpec fault);
  Result<void> Append(const void* data, size_t n) override;
  Result<void> Sync() override;
  bool dead() const { return dead_; }

 private:
  Result<void> FlushToDisk(const uint8_t* data, size_t n);

  std::string path_;
  FaultSpec fault_;
  std::vector<uint8_t> unsynced_;
  uint64_t writes_ = 0;
  bool dead_ = false;
};

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

struct DurabilityOptions {
  std::string data_dir;
  // Checkpoint policy: ShouldCheckpoint() turns true when this many WAL records
  // (or bytes) have accumulated since the last checkpoint. 0 disables that trigger.
  uint64_t checkpoint_interval_records = 4096;
  uint64_t checkpoint_interval_bytes = 4u << 20;
  // Fault injection for the WAL file (checkpoint temp files stay real so the
  // matrix rows stay independent). Defaults to HAC_WAL_FAULT.
  FaultSpec wal_fault = FaultSpec::FromEnv();
};

struct RecoveryInfo {
  uint64_t checkpoint_lsn = 0;     // 0 = recovered from an empty/genesis state
  std::string checkpoint_file;     // empty when no checkpoint was used
  uint64_t replayed_records = 0;   // WAL frames re-executed through the facade
  uint64_t skipped_records = 0;    // frames at or below the checkpoint LSN
  uint64_t replay_errors = 0;      // frames whose re-execution failed (tolerated)
  bool tail_truncated = false;     // replay stopped at a torn/corrupt frame
  std::string detail;              // human-readable note about the stop reason
};

// One data directory. Layout:
//   checkpoint-<lsn,16 hex>.hacs   full SaveState image, CRC-sealed header
//   wal-<lsn,16 hex>.log           frames with LSNs > <lsn>, in order
// Single-threaded like the facade it persists: the service layer calls it from the
// writer thread only.
class DurableStore {
 public:
  // Opens (creating if needed) the data directory and scans generations. Does not
  // read the state yet — call Recover() for that.
  static Result<std::unique_ptr<DurableStore>> Open(DurabilityOptions options);

  // Builds the file system the directory describes: newest valid checkpoint plus
  // the surviving WAL tail, reindexed. On a fresh directory returns an empty
  // facade. Also drains the recovered instance's journal (replay re-journals) and
  // writes nothing — the caller decides when the first checkpoint happens.
  Result<std::unique_ptr<HacFileSystem>> Recover(HacOptions fs_options = {});
  const RecoveryInfo& recovery_info() const { return recovery_; }

  // Group commit: drains every journal record `fs` accumulated, appends the
  // replayable ones as WAL frames, and fsyncs once. The caller must not release
  // acknowledgements for the drained mutations before this returns OK.
  Result<void> CommitFrom(HacFileSystem& fs);

  // Atomic checkpoint (write-temp, fsync, rename, fsync dir), WAL rotation, and
  // pruning of generations older than the previous retained checkpoint.
  Result<void> Checkpoint(HacFileSystem& fs);

  bool ShouldCheckpoint() const;

  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t records_since_checkpoint() const { return records_since_checkpoint_; }
  uint64_t bytes_since_checkpoint() const { return bytes_since_checkpoint_; }
  const DurabilityOptions& options() const { return options_; }

  // --- shared frame codec (exposed for tests and fsck tooling) ---

  // Appends one frame (u32 length | u32 crc | payload) to `out`.
  static void EncodeFrame(uint64_t lsn, const JournalRecord& rec,
                          std::vector<uint8_t>& out);
  struct DecodedFrame {
    uint64_t lsn = 0;
    JournalRecord record;
  };
  // Decodes every valid frame from the front of `bytes`; stops at the first torn,
  // truncated or corrupt frame. `truncated`/`detail` report whether and why the
  // scan stopped early.
  static std::vector<DecodedFrame> DecodeFrames(const std::vector<uint8_t>& bytes,
                                                bool* truncated, std::string* detail);

  // Re-executes one replayed record through the public facade API. Exposed so the
  // clean-replay reference in tests shares the exact semantics.
  static Result<void> ApplyRecord(HacFileSystem& fs, const JournalRecord& rec);

 private:
  explicit DurableStore(DurabilityOptions options);

  Result<void> OpenWalSegment(uint64_t start_lsn);
  Result<void> PruneGenerations();
  // Newest-first list of (lsn, path) for files matching `prefix`.
  std::vector<std::pair<uint64_t, std::string>> ListGeneration(
      const std::string& prefix, const std::string& suffix) const;

  DurabilityOptions options_;
  std::unique_ptr<DurableFile> wal_;
  std::string wal_path_;
  uint64_t wal_start_lsn_ = 0;       // segment name; frames in it have lsn > this
  uint64_t last_lsn_ = 0;            // highest LSN ever assigned (or recovered)
  uint64_t last_checkpoint_lsn_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  RecoveryInfo recovery_;
};

}  // namespace hac

#endif  // HAC_CORE_DURABILITY_H_
