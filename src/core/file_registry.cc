#include "src/core/file_registry.h"

#include "src/vfs/path.h"

namespace hac {

DocId FileRegistry::NewRecord(InodeId inode, const std::string& path) {
  DocId id = static_cast<DocId>(records_.size());
  FileRecord rec;
  rec.id = id;
  rec.inode = inode;
  rec.path = path;
  rec.alive = true;
  rec.dirty = true;
  records_.push_back(std::move(rec));
  by_path_.emplace(path, id);
  by_inode_.emplace(inode, id);
  universe_.Set(id);
  return id;
}

Result<DocId> FileRegistry::Add(InodeId inode, const std::string& path) {
  if (by_path_.count(path) != 0) {
    return Error(ErrorCode::kAlreadyExists, path);
  }
  return NewRecord(inode, path);
}

Result<DocId> FileRegistry::AddRemote(InodeId inode, const std::string& path,
                                      const std::string& remote_key) {
  auto it = by_remote_key_.find(remote_key);
  if (it != by_remote_key_.end()) {
    return it->second;
  }
  if (by_path_.count(path) != 0) {
    return Error(ErrorCode::kAlreadyExists, path);
  }
  DocId id = NewRecord(inode, path);
  records_[id].remote = true;
  records_[id].remote_key = remote_key;
  by_remote_key_.emplace(remote_key, id);
  return id;
}

Result<DocId> FileRegistry::FindByPath(const std::string& path) const {
  auto it = by_path_.find(path);
  if (it == by_path_.end()) {
    return Error(ErrorCode::kNotFound, "unregistered file: " + path);
  }
  return it->second;
}

Result<DocId> FileRegistry::FindByInode(InodeId inode) const {
  auto it = by_inode_.find(inode);
  if (it == by_inode_.end()) {
    return Error(ErrorCode::kNotFound, "unregistered inode " + std::to_string(inode));
  }
  return it->second;
}

Result<DocId> FileRegistry::FindRemote(const std::string& remote_key) const {
  auto it = by_remote_key_.find(remote_key);
  if (it == by_remote_key_.end()) {
    return Error(ErrorCode::kNotFound, "remote key " + remote_key);
  }
  return it->second;
}

const FileRecord* FileRegistry::Get(DocId id) const {
  if (id >= records_.size()) {
    return nullptr;
  }
  return &records_[id];
}

Result<void> FileRegistry::Deactivate(DocId id) {
  if (id >= records_.size() || !records_[id].alive) {
    return Error(ErrorCode::kNotFound, "doc " + std::to_string(id));
  }
  FileRecord& rec = records_[id];
  rec.alive = false;
  rec.dirty = true;  // must be purged from the index
  by_path_.erase(rec.path);
  by_inode_.erase(rec.inode);
  universe_.Clear(id);
  return OkResult();
}

Result<void> FileRegistry::MarkDirty(DocId id) {
  if (id >= records_.size()) {
    return Error(ErrorCode::kNotFound, "doc " + std::to_string(id));
  }
  records_[id].dirty = true;
  return OkResult();
}

Result<void> FileRegistry::SetPath(DocId id, const std::string& path) {
  if (id >= records_.size() || !records_[id].alive) {
    return Error(ErrorCode::kNotFound, "doc " + std::to_string(id));
  }
  FileRecord& rec = records_[id];
  by_path_.erase(rec.path);
  rec.path = path;
  by_path_.emplace(path, id);
  return OkResult();
}

void FileRegistry::RenameSubtree(const std::string& from, const std::string& to) {
  std::vector<DocId> moved;
  for (const auto& [path, id] : by_path_) {
    if (PathIsWithin(path, from)) {
      moved.push_back(id);
    }
  }
  for (DocId id : moved) {
    FileRecord& rec = records_[id];
    std::string new_path = RebasePath(rec.path, from, to);
    by_path_.erase(rec.path);
    rec.path = std::move(new_path);
    by_path_.emplace(rec.path, id);
  }
}

Bitmap FileRegistry::FilesWithin(const std::string& dir) const {
  Bitmap out;
  for (const auto& [path, id] : by_path_) {
    if (PathIsWithin(path, dir) && path != dir) {
      out.Set(id);
    }
  }
  return out;
}

Bitmap FileRegistry::DirectChildrenOf(const std::string& dir) const {
  Bitmap out;
  for (const auto& [path, id] : by_path_) {
    if (DirName(path) == dir) {
      out.Set(id);
    }
  }
  return out;
}

std::vector<DocId> FileRegistry::DirtyDocs() const {
  std::vector<DocId> out;
  for (const FileRecord& rec : records_) {
    if (rec.dirty) {
      out.push_back(rec.id);
    }
  }
  return out;
}

void FileRegistry::ClearDirty(DocId id) {
  if (id < records_.size()) {
    records_[id].dirty = false;
  }
}

Result<void> FileRegistry::RestoreRecord(const FileRecord& rec) {
  if (rec.id != records_.size()) {
    return Error(ErrorCode::kCorrupt,
                 "registry record out of order: " + std::to_string(rec.id));
  }
  records_.push_back(rec);
  if (rec.alive) {
    if (by_path_.count(rec.path) != 0 || by_inode_.count(rec.inode) != 0) {
      return Error(ErrorCode::kCorrupt, "duplicate live record: " + rec.path);
    }
    by_path_.emplace(rec.path, rec.id);
    by_inode_.emplace(rec.inode, rec.id);
    universe_.Set(rec.id);
  }
  if (!rec.remote_key.empty()) {
    by_remote_key_.emplace(rec.remote_key, rec.id);
  }
  return OkResult();
}

size_t FileRegistry::SizeBytes() const {
  size_t total = records_.capacity() * sizeof(FileRecord) + universe_.SizeBytes();
  for (const FileRecord& rec : records_) {
    total += rec.path.size() + rec.remote_key.size();
  }
  total += by_path_.size() * 64 + by_inode_.size() * 48 + by_remote_key_.size() * 64;
  return total;
}

}  // namespace hac
