// Data-consistency policy (section 2.4): HAC deliberately does not chase every file
// mutation; it re-indexes periodically or on demand. The policy picks "periodically".
#ifndef HAC_CORE_SYNC_POLICY_H_
#define HAC_CORE_SYNC_POLICY_H_

#include <cstdint>

namespace hac {

enum class SyncMode : uint8_t {
  kManual = 0,          // only explicit Reindex()/SSync() calls
  kEveryNMutations = 1, // reindex after N content mutations
  kIntervalTicks = 2,   // reindex when the virtual clock advanced by N ticks
  // Reindex after EVERY content mutation: the database-style instant consistency the
  // paper declines by default ("we could have adopted such a policy; similar to
  // databases") and names as future work. Costly — each write pays an index update
  // plus a consistency pass — but queries never see stale results.
  kImmediate = 3,
};

struct SyncPolicy {
  SyncMode mode = SyncMode::kManual;
  uint64_t n = 0;  // mutation count or tick interval, depending on mode

  static SyncPolicy Manual() { return {SyncMode::kManual, 0}; }
  static SyncPolicy EveryNMutations(uint64_t n) { return {SyncMode::kEveryNMutations, n}; }
  static SyncPolicy IntervalTicks(uint64_t ticks) { return {SyncMode::kIntervalTicks, ticks}; }
  static SyncPolicy Immediate() { return {SyncMode::kImmediate, 0}; }
};

}  // namespace hac

#endif  // HAC_CORE_SYNC_POLICY_H_
