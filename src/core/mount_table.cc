#include "src/core/mount_table.h"

#include "src/vfs/path.h"

namespace hac {

Result<void> MountTable::AddSyntactic(const std::string& mount_path, FsInterface* fs,
                                      const std::string& remote_root) {
  if (fs == nullptr) {
    return Error(ErrorCode::kInvalidArgument, "null file system");
  }
  for (const SyntacticMount& m : syntactic_) {
    if (PathIsWithin(mount_path, m.mount_path) || PathIsWithin(m.mount_path, mount_path)) {
      return Error(ErrorCode::kAlreadyExists,
                   "overlaps existing syntactic mount at " + m.mount_path);
    }
  }
  syntactic_.push_back(SyntacticMount{mount_path, fs, remote_root});
  return OkResult();
}

Result<void> MountTable::AddSemantic(const std::string& mount_path, NameSpace* space) {
  if (space == nullptr) {
    return Error(ErrorCode::kInvalidArgument, "null name space");
  }
  for (SemanticMount& m : semantic_) {
    if (m.mount_path == mount_path) {
      if (m.language != space->QueryLanguage()) {
        return Error(ErrorCode::kLanguageMismatch,
                     "mount speaks '" + m.language + "', name space '" + space->Name() +
                         "' speaks '" + space->QueryLanguage() + "'");
      }
      for (const NameSpace* existing : m.spaces) {
        if (existing == space) {
          return Error(ErrorCode::kAlreadyExists, "name space already mounted");
        }
      }
      m.spaces.push_back(space);
      return OkResult();
    }
  }
  semantic_.push_back(SemanticMount{mount_path, space->QueryLanguage(), {space}});
  return OkResult();
}

Result<void> MountTable::RemoveSyntactic(const std::string& mount_path) {
  for (auto it = syntactic_.begin(); it != syntactic_.end(); ++it) {
    if (it->mount_path == mount_path) {
      syntactic_.erase(it);
      return OkResult();
    }
  }
  return Error(ErrorCode::kNotFound, "no syntactic mount at " + mount_path);
}

Result<void> MountTable::RemoveSemantic(const std::string& mount_path) {
  for (auto it = semantic_.begin(); it != semantic_.end(); ++it) {
    if (it->mount_path == mount_path) {
      semantic_.erase(it);
      return OkResult();
    }
  }
  return Error(ErrorCode::kNotFound, "no semantic mount at " + mount_path);
}

const SyntacticMount* MountTable::FindSyntacticCovering(const std::string& path) const {
  const SyntacticMount* best = nullptr;
  for (const SyntacticMount& m : syntactic_) {
    if (PathIsWithin(path, m.mount_path)) {
      if (best == nullptr || m.mount_path.size() > best->mount_path.size()) {
        best = &m;
      }
    }
  }
  return best;
}

const SemanticMount* MountTable::FindSemanticAt(const std::string& path) const {
  for (const SemanticMount& m : semantic_) {
    if (m.mount_path == path) {
      return &m;
    }
  }
  return nullptr;
}

void MountTable::RenameSubtree(const std::string& from, const std::string& to) {
  for (SyntacticMount& m : syntactic_) {
    if (PathIsWithin(m.mount_path, from)) {
      m.mount_path = RebasePath(m.mount_path, from, to);
    }
  }
  for (SemanticMount& m : semantic_) {
    if (PathIsWithin(m.mount_path, from)) {
      m.mount_path = RebasePath(m.mount_path, from, to);
    }
  }
}

size_t MountTable::SizeBytes() const {
  size_t total = 0;
  for (const SyntacticMount& m : syntactic_) {
    total += sizeof(m) + m.mount_path.size() + m.remote_root.size();
  }
  for (const SemanticMount& m : semantic_) {
    total += sizeof(m) + m.mount_path.size() + m.language.size() +
             m.spaces.size() * sizeof(NameSpace*);
  }
  return total;
}

}  // namespace hac
