// Metadata journal: HAC's durable bookkeeping channel.
//
// The paper's prototype writes its per-directory structures, global-map updates and
// dependency-graph nodes to disk ("All of these are stored in the disk and require
// extra I/O operations"), which is where the Makedir/Copy overhead of Table 1 comes
// from. Each bookkeeping action encodes a real record into the journal buffer; the
// work is genuine (serialization + copy), the buffer size is reported by the space
// bench, and tests replay it.
//
// Since the durability layer (core/durability.h) the journal is also the write-ahead
// log's record source: the subset of ops marked REPLAYABLE below carries full-path
// operands sufficient to re-execute the mutation through the public HacFileSystem
// API, and DurableStore drains the buffer into CRC-framed on-disk WAL frames at each
// group commit (docs/DURABILITY.md). Draining bounds the in-memory footprint: once
// records are on disk the buffer drops them instead of retaining the full history.
#ifndef HAC_CORE_METADATA_JOURNAL_H_
#define HAC_CORE_METADATA_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/serializer.h"

namespace hac {

// Append only: the numeric values are written to the on-disk WAL (docs/DURABILITY.md
// pins the mapping). Ops 1-10 predate the durability layer; several are bookkeeping
// echoes of derived state (skipped by recovery replay), the rest were retrofitted
// with replayable operands. Ops 11+ exist so that every acknowledged user mutation
// has exactly one replayable record.
enum class JournalOp : uint8_t {
  kDirCreated = 1,       // REPLAYABLE  a = dir path
  kDirRemoved = 2,       // REPLAYABLE  a = dir path
  kFileRegistered = 3,   // REPLAYABLE  subject = doc, a = path (file came to exist)
  kFileDeactivated = 4,  // bookkeeping subject = doc, a = path (derived from unlink/rename)
  kQuerySet = 5,         // REPLAYABLE  subject = uid, a = dir path, b = query ("" reverts)
  kLinkAdded = 6,        // bookkeeping subject = uid, a = name (link-table echo)
  kLinkRemoved = 7,      // bookkeeping subject = uid, a = name (link-table echo)
  kRename = 8,           // REPLAYABLE  a = from path, b = to path
  kMount = 9,            // bookkeeping (mounts are session state, never replayed)
  kUnmount = 10,         // bookkeeping
  kFileWritten = 11,     // REPLAYABLE  subject = offset, a = path, b = bytes
  kFileTruncated = 12,   // REPLAYABLE  a = path (open with kOpenTruncate)
  kUnlinked = 13,        // REPLAYABLE  a = path (user unlink; prohibit semantics re-derive)
  kSymlinked = 14,       // REPLAYABLE  subject = dir uid, a = link path, b = verbatim target
  kLinkPromoted = 15,    // REPLAYABLE  subject = dir uid, a = link path
  kLinkDemoted = 16,     // REPLAYABLE  subject = dir uid, a = link path
  kProhibitAdded = 17,   // REPLAYABLE  subject = dir uid, a = dir path, b = file path
  kProhibitCleared = 18, // REPLAYABLE  subject = dir uid, a = dir path, b = file path
};

// The highest assigned op. The WAL decoder rejects values above this bound and the
// docs_check gate iterates the enum through it; bump when appending (append only —
// the numeric values are in on-disk WAL frames).
inline constexpr JournalOp kMaxJournalOp = JournalOp::kProhibitCleared;
inline constexpr size_t kJournalOpCount = static_cast<size_t>(kMaxJournalOp) + 1;

// Stable identifier per op (index = numeric value; index 0 is unassigned). The
// docs_check gate cross-checks `JournalOp::k<Name>` tokens in docs/DURABILITY.md
// against this table in both directions.
inline constexpr const char* kJournalOpNames[kJournalOpCount] = {
    "?",
    "DirCreated",     "DirRemoved",    "FileRegistered", "FileDeactivated",
    "QuerySet",       "LinkAdded",     "LinkRemoved",    "Rename",
    "Mount",          "Unmount",       "FileWritten",    "FileTruncated",
    "Unlinked",       "Symlinked",     "LinkPromoted",   "LinkDemoted",
    "ProhibitAdded",  "ProhibitCleared",
};

inline const char* JournalOpName(JournalOp op) {
  const auto i = static_cast<size_t>(op);
  return i > 0 && i < kJournalOpCount ? kJournalOpNames[i] : "?";
}

// True for ops recovery re-executes through the facade; the rest are bookkeeping
// echoes of state that replay re-derives (registry ids, transient links, mounts).
bool IsReplayableOp(JournalOp op);

struct JournalRecord {
  JournalOp op;
  uint64_t subject;   // uid, doc id or byte offset (see the op table)
  std::string a;      // op-specific (path, query text, link name, ...)
  std::string b;
};

class MetadataJournal {
 public:
  void Append(JournalOp op, uint64_t subject, std::string_view a = {},
              std::string_view b = {});

  // Decodes the records currently buffered, i.e. everything appended since the last
  // Drain()/Clear() (tests replay this to validate bookkeeping).
  Result<std::vector<JournalRecord>> Decode() const;

  // Bounded drain: decodes and removes up to `max_records` of the oldest buffered
  // records (0 = all). The durability layer calls this at each group commit, so a
  // long-running server's buffer holds only the records not yet on disk.
  std::vector<JournalRecord> Drain(size_t max_records = 0);

  size_t SizeBytes() const { return buf_.size(); }
  // Records appended since construction/Clear (draining does not reset this).
  uint64_t RecordCount() const { return records_; }
  // Records currently buffered (appended - drained).
  uint64_t PendingRecords() const { return records_ - drained_; }
  void Clear();

 private:
  std::vector<uint8_t> buf_;
  uint64_t records_ = 0;
  uint64_t drained_ = 0;
};

}  // namespace hac

#endif  // HAC_CORE_METADATA_JOURNAL_H_
