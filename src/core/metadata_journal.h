// Metadata journal: HAC's durable bookkeeping channel.
//
// The paper's prototype writes its per-directory structures, global-map updates and
// dependency-graph nodes to disk ("All of these are stored in the disk and require
// extra I/O operations"), which is where the Makedir/Copy overhead of Table 1 comes
// from. Our substrate is in-memory, so durability is modelled as serialized append-only
// records: each bookkeeping action encodes a real record into the journal buffer. The
// work is genuine (serialization + copy), the buffer size is reported by the space
// bench, and tests replay it.
#ifndef HAC_CORE_METADATA_JOURNAL_H_
#define HAC_CORE_METADATA_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/serializer.h"

namespace hac {

enum class JournalOp : uint8_t {
  kDirCreated = 1,
  kDirRemoved = 2,
  kFileRegistered = 3,
  kFileDeactivated = 4,
  kQuerySet = 5,
  kLinkAdded = 6,
  kLinkRemoved = 7,
  kRename = 8,
  kMount = 9,
  kUnmount = 10,
};

struct JournalRecord {
  JournalOp op;
  uint64_t subject;   // uid or doc id
  std::string a;      // op-specific (path, query text, link name, ...)
  std::string b;
};

class MetadataJournal {
 public:
  void Append(JournalOp op, uint64_t subject, std::string_view a = {},
              std::string_view b = {});

  // Decodes the full journal (tests replay this to validate bookkeeping).
  Result<std::vector<JournalRecord>> Decode() const;

  size_t SizeBytes() const { return buf_.size(); }
  uint64_t RecordCount() const { return records_; }
  void Clear();

 private:
  std::vector<uint8_t> buf_;
  uint64_t records_ = 0;
};

}  // namespace hac

#endif  // HAC_CORE_METADATA_JOURNAL_H_
