// hacsh: an interactive shell over a HAC file system, exposing the paper's command
// vocabulary (smkdir / schq / sreadq / ssync / sact / smount / slinks / reindex) next
// to the ordinary commands. Reads stdin; with no tty it runs a demo script, so this
// example is usable both interactively and in CI.
//
//   ./build/examples/example_hacsh            # demo script
//   ./build/examples/example_hacsh -          # read commands from stdin
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/hac_file_system.h"
#include "src/remote/digital_library.h"
#include "src/tools/commands.h"

namespace {

const char* const kDemoScript[] = {
    "help",
    "mkdir /notes",
    "echo 'fingerprint minutiae matching ideas' > /notes/ideas.txt",
    "echo 'fingerprint in the murder case' > /notes/crime.txt",
    "echo 'butter flour oven' > /notes/recipes.txt",
    "reindex",
    "smkdir /fp 'fingerprint AND NOT murder'",
    "ls /fp",
    "sreadq /fp",
    "cd /fp",
    "sact ideas.txt",
    "ln -s /notes/recipes.txt keep.txt",
    "rm /fp/crime.txt",  // no-op: not present (filtered by NOT murder)
    "slinks /fp",
    "schq /fp 'fingerprint'",
    "ls /fp",            // crime.txt appears; keep.txt survives the query change
    "slinks",
    "smount -s /lib acmlib",
    "smkdir /lib/papers 'fingerprint'",
    "ls /lib/papers",
    "squery 'fingerprint AND NOT murder'",
    "squery 'fingerprnt~1'",  // approximate match tolerates the typo
    "sdump /",
    "sfsck",
    "stats",
};

}  // namespace

int main(int argc, char** argv) {
  hac::HacFileSystem fs;
  hac::CommandInterpreter sh(&fs);

  // A small built-in digital library so `smount -s ... acmlib` works out of the box.
  hac::DigitalLibrary library("acmlib");
  library.AddArticle({"a1", "Fingerprint Matching Survey", "Maltoni",
                      "fingerprint minutiae matching", "ridge structures compared"});
  library.AddArticle({"a2", "Btrees Revisited", "Bayer", "database indexing", "pages"});
  sh.RegisterNameSpace("acmlib", &library);
  if (auto r = fs.Mkdir("/lib"); !r.ok()) {
    return 1;
  }

  const bool from_stdin = argc > 1 && std::strcmp(argv[1], "-") == 0;
  if (!from_stdin) {
    for (const char* line : kDemoScript) {
      std::printf("hac:%s$ %s\n", sh.cwd().c_str(), line);
      auto out = sh.Execute(line);
      if (out.ok()) {
        std::fputs(out.value().c_str(), stdout);
      } else {
        std::printf("error: %s\n", out.error().ToString().c_str());
      }
    }
    return 0;
  }

  char buf[4096];
  std::printf("hac:%s$ ", sh.cwd().c_str());
  std::fflush(stdout);
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    std::string line(buf);
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
    }
    if (line == "exit" || line == "quit") {
      break;
    }
    auto out = sh.Execute(line);
    if (out.ok()) {
      std::fputs(out.value().c_str(), stdout);
    } else {
      std::printf("error: %s\n", out.error().ToString().c_str());
    }
    std::printf("hac:%s$ ", sh.cwd().c_str());
    std::fflush(stdout);
  }
  return 0;
}
