// Sharing personal classifications (section 3.2): coworkers mount each other's HAC
// file systems syntactically (to browse) and semantically (to search), a web search
// engine joins through its own semantic mount, and a central catalog of everyone's
// semantic-directory queries is itself indexed and searched.
#include <cstdio>

#include "src/core/hac_file_system.h"
#include "src/remote/remote_hac.h"
#include "src/remote/web_search.h"

using hac::HacFileSystem;
using hac::RemoteHacNameSpace;
using hac::WebSearchEngine;

namespace {

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _r = (expr);                                                     \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s: %s\n", #expr,                       \
                   _r.error().ToString().c_str());                        \
      return 1;                                                           \
    }                                                                     \
  } while (0)

void Show(HacFileSystem& fs, const std::string& dir) {
  std::printf("%s:\n", dir.c_str());
  auto entries = fs.ReadDir(dir);
  if (!entries.ok()) {
    std::printf("  error: %s\n", entries.error().ToString().c_str());
    return;
  }
  for (const auto& e : entries.value()) {
    std::printf("  %s%s\n", e.name.c_str(),
                e.type == hac::NodeType::kDirectory ? "/" : "");
  }
}

}  // namespace

int main() {
  // --- Alice curates a fingerprint reading list ---
  HacFileSystem alice;
  CHECK_OK(alice.MkdirAll("/work/papers"));
  CHECK_OK(alice.WriteFile("/work/papers/survey.txt",
                           "fingerprint minutiae matching survey"));
  CHECK_OK(alice.WriteFile("/work/papers/btree.txt", "btree concurrency"));
  CHECK_OK(alice.WriteFile("/work/papers/latent.txt",
                           "latent fingerprint enhancement"));
  CHECK_OK(alice.Reindex());
  CHECK_OK(alice.SMkdir("/work/fp_reading", "fingerprint"));
  std::printf("=== alice's classification ===\n");
  Show(alice, "/work/fp_reading");

  // --- Bob browses it via a syntactic mount (no searching of his own) ---
  HacFileSystem bob;
  CHECK_OK(bob.MkdirAll("/peers/alice"));
  CHECK_OK(bob.MountSyntactic("/peers/alice", &alice, "/work"));
  std::printf("\n=== bob browses alice through a syntactic mount ===\n");
  Show(bob, "/peers/alice/fp_reading");
  std::printf("bob reads through alice's link: %s\n",
              bob.ReadFileToString("/peers/alice/fp_reading/survey.txt")
                  .value_or("(error)")
                  .c_str());

  // --- Bob also searches Alice's data via a semantic mount, keeping his own copy ---
  RemoteHacNameSpace alice_ns("alice", &alice, "/work");
  CHECK_OK(bob.MkdirAll("/research"));
  CHECK_OK(bob.MountSemantic("/research", &alice_ns));

  // --- And a (simulated) web search engine on the same topic, at another mount ---
  WebSearchEngine web("websearch");
  web.AddPage("http://nist.example/fp", "NIST fingerprint data", "fingerprint dataset");
  web.AddPage("http://cook.example", "Pie crust", "butter flour");
  CHECK_OK(bob.MkdirAll("/web"));
  CHECK_OK(bob.MountSemantic("/web", &web));

  CHECK_OK(bob.SMkdir("/research/fp", "fingerprint"));
  CHECK_OK(bob.SMkdir("/web/fp", "fingerprint"));
  std::printf("\n=== bob's own searches (imported copies, his to edit) ===\n");
  Show(bob, "/research/fp");
  Show(bob, "/web/fp");

  // Bob prunes one of Alice's results from HIS copy; Alice is unaffected.
  auto entries = bob.ReadDir("/research/fp").value();
  if (!entries.empty()) {
    CHECK_OK(bob.Unlink("/research/fp/" + entries[0].name));
  }
  std::printf("\nafter bob prunes one import: his=%zu links, alice still=%zu links\n",
              bob.ReadDir("/research/fp").value().size(),
              alice.ReadDir("/work/fp_reading").value().size());

  // --- A central catalog indexes everyone's queries ---
  HacFileSystem central;
  CHECK_OK(central.Mkdir("/catalog"));
  CHECK_OK(central.WriteFile("/catalog/alice_fp_reading.txt",
                             "owner alice\npath /work/fp_reading\nquery " +
                                 alice.GetQuery("/work/fp_reading").value()));
  CHECK_OK(central.WriteFile("/catalog/bob_web_fp.txt",
                             "owner bob\npath /web/fp\nquery " +
                                 bob.GetQuery("/web/fp").value()));
  CHECK_OK(central.Reindex());
  CHECK_OK(central.SMkdir("/interested_in_fingerprints", "fingerprint"));
  std::printf("\n=== central catalog: who organizes fingerprint material? ===\n");
  Show(central, "/interested_in_fingerprints");
  return 0;
}
