// The paper's running example, end to end: a research project on fingerprints whose
// material is scattered across email, notes and source code, combined into one
// semantic directory, tuned by hand, and extended with a remote digital library via a
// semantic mount point (sections 2.1, 3.1-3.2 of the paper).
#include <cstdio>

#include "src/core/hac_file_system.h"
#include "src/remote/digital_library.h"

using hac::DigitalLibrary;
using hac::HacFileSystem;

namespace {

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _r = (expr);                                                     \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s: %s\n", #expr,                       \
                   _r.error().ToString().c_str());                        \
      return 1;                                                           \
    }                                                                     \
  } while (0)

void Show(HacFileSystem& fs, const std::string& dir, const char* label) {
  std::printf("--- %s (%s) ---\n", label, dir.c_str());
  auto entries = fs.ReadDir(dir);
  if (!entries.ok()) {
    std::printf("  error: %s\n", entries.error().ToString().c_str());
    return;
  }
  for (const auto& e : entries.value()) {
    const char* kind = e.type == hac::NodeType::kSymlink
                           ? "link"
                           : (e.type == hac::NodeType::kDirectory ? "dir " : "file");
    std::printf("  [%s] %s\n", kind, e.name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  HacFileSystem fs;

  // The user's scattered project material.
  CHECK_OK(fs.MkdirAll("/home/mail"));
  CHECK_OK(fs.MkdirAll("/home/notes"));
  CHECK_OK(fs.MkdirAll("/home/src"));
  CHECK_OK(fs.WriteFile("/home/mail/alice_minutiae.eml",
                        "From: alice\nSubject: fingerprint minutiae\n"
                        "ridge ending counts look promising"));
  CHECK_OK(fs.WriteFile("/home/mail/lunch.eml", "From: bob\nSubject: lunch?\nnoon?"));
  CHECK_OK(fs.WriteFile("/home/notes/matching_ideas.txt",
                        "fingerprint matching by local ridge structure"));
  CHECK_OK(fs.WriteFile("/home/notes/crime_clipping.txt",
                        "fingerprint ties suspect to the murder scene"));
  CHECK_OK(fs.WriteFile("/home/src/matcher.c",
                        "/* fingerprint matcher prototype */\nint match(void);"));
  CHECK_OK(fs.Reindex());

  // One semantic directory gathers it all.
  CHECK_OK(fs.SMkdir("/home/fingerprint", "fingerprint"));
  Show(fs, "/home/fingerprint", "initial query result");

  // Manual tuning, exactly as the paper describes:
  //  - the crime story matches the query but is noise: delete it (=> prohibited);
  CHECK_OK(fs.Unlink("/home/fingerprint/crime_clipping.txt"));
  //  - the scan image does not match the query but belongs here (=> permanent).
  CHECK_OK(fs.WriteFile("/home/notes/scan1.pgm", "P5 image payload"));
  CHECK_OK(fs.Reindex());
  CHECK_OK(fs.Symlink("/home/notes/scan1.pgm", "/home/fingerprint/scan1.pgm"));
  Show(fs, "/home/fingerprint", "after manual tuning");

  // Query refinement through the hierarchy: mail about the project, by sender.
  CHECK_OK(fs.SMkdir("/home/fingerprint/from_alice", "alice"));
  Show(fs, "/home/fingerprint/from_alice", "refined: only alice's mail");

  // A remote digital library joins through a semantic mount point.
  DigitalLibrary library("digilib");
  library.AddArticle({"fp99", "A Survey of Fingerprint Matching", "Maltoni",
                      "fingerprint minutiae matching algorithms compared",
                      "ridge structures, spectral methods, benchmarks"});
  library.AddArticle({"os99", "Scheduling for Multimedia", "Someone",
                      "cpu scheduling deadlines", "reservations"});
  CHECK_OK(fs.MkdirAll("/home/library"));
  CHECK_OK(fs.MountSemantic("/home/library", &library));
  CHECK_OK(fs.SMkdir("/home/library/fp_papers", "fingerprint AND matching"));
  Show(fs, "/home/library/fp_papers", "imported from the digital library");

  // The imported article is now part of the personal name space: the project
  // directory picks it up on the next synchronization.
  CHECK_OK(fs.SSync("/home/fingerprint"));
  Show(fs, "/home/fingerprint", "project dir after the library import");

  // sact: extract the matching information from one result.
  auto lines = fs.SAct("/home/fingerprint/matching_ideas.txt");
  if (lines.ok()) {
    std::printf("--- sact(/home/fingerprint/matching_ideas.txt) ---\n");
    for (const std::string& line : lines.value()) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("\n");
  }

  // Reorganizing by name never breaks content-based structure: rename the project.
  CHECK_OK(fs.Rename("/home/fingerprint", "/home/biometrics"));
  CHECK_OK(fs.SSync("/home/biometrics"));
  Show(fs, "/home/biometrics", "renamed project, still consistent");
  std::printf("query of /home/biometrics/from_alice is still: %s\n",
              fs.GetQuery("/home/biometrics/from_alice").value().c_str());
  return 0;
}
