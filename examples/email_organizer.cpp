// Email organizing with semantic directories (section 2.3's email example): the same
// message can live in several directories at once — by sender, by topic, by an
// arbitrary combination — because directories hold links, not the messages themselves.
#include <cstdio>

#include "src/core/hac_file_system.h"
#include "src/support/rng.h"
#include "src/workload/corpus.h"

using hac::HacFileSystem;
using hac::Rng;

namespace {

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _r = (expr);                                                     \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s: %s\n", #expr,                       \
                   _r.error().ToString().c_str());                        \
      return 1;                                                           \
    }                                                                     \
  } while (0)

size_t CountLinks(HacFileSystem& fs, const std::string& dir) {
  auto entries = fs.ReadDir(dir);
  if (!entries.ok()) {
    return 0;
  }
  size_t n = 0;
  for (const auto& e : entries.value()) {
    if (e.type == hac::NodeType::kSymlink) {
      ++n;
    }
  }
  return n;
}

}  // namespace

int main() {
  HacFileSystem fs;
  Rng rng(1999);

  // A synthetic mailbox: 60 messages among 4 people about a handful of topics.
  CHECK_OK(fs.MkdirAll("/mail/inbox"));
  const std::vector<std::string> people = {"alice", "bob", "carol", "dave"};
  const std::vector<std::string> topics = {"fingerprint", "database", "network",
                                           "recipe"};
  for (int i = 0; i < 60; ++i) {
    const std::string& from = people[rng.NextBelow(people.size())];
    const std::string& topic = topics[rng.NextZipf(topics.size(), 0.7)];
    std::string mail = hac::GenerateEmail(rng, from, "me", topic, 60);
    CHECK_OK(fs.WriteFile("/mail/inbox/m" + std::to_string(i) + ".eml", mail));
  }
  CHECK_OK(fs.Reindex());

  // Views by sender...
  CHECK_OK(fs.MkdirAll("/mail/by_sender"));
  for (const std::string& person : people) {
    CHECK_OK(fs.SMkdir("/mail/by_sender/" + person, person + " AND dir(/mail/inbox)"));
  }
  // ...and by topic...
  CHECK_OK(fs.MkdirAll("/mail/by_topic"));
  for (const std::string& topic : topics) {
    CHECK_OK(fs.SMkdir("/mail/by_topic/" + topic, topic + " AND dir(/mail/inbox)"));
  }
  // ...and one combined view that *refines an edited result*: alice's fingerprint mail.
  CHECK_OK(fs.SMkdir("/mail/alice_fp",
                     "fingerprint AND dir(/mail/by_sender/alice)"));

  std::printf("mailbox: 60 messages\n\nby sender:\n");
  size_t total_by_sender = 0;
  for (const std::string& person : people) {
    size_t n = CountLinks(fs, "/mail/by_sender/" + person);
    total_by_sender += n;
    std::printf("  %-6s %zu\n", person.c_str(), n);
  }
  std::printf("  (sum %zu — every message has exactly one sender)\n\nby topic:\n",
              total_by_sender);
  for (const std::string& topic : topics) {
    std::printf("  %-12s %zu\n", topic.c_str(),
                CountLinks(fs, "/mail/by_topic/" + topic));
  }
  std::printf("\nalice AND fingerprint: %zu\n", CountLinks(fs, "/mail/alice_fp"));

  // The combined view depends on the by-sender view: pruning there propagates.
  auto entries = fs.ReadDir("/mail/alice_fp");
  if (entries.ok() && !entries.value().empty()) {
    std::string victim = entries.value()[0].name;
    CHECK_OK(fs.Unlink("/mail/by_sender/alice/" + victim));
    std::printf("after pruning %s from alice's view: %zu\n", victim.c_str(),
                CountLinks(fs, "/mail/alice_fp"));
  }

  // New mail arrives; one reindex refreshes every view at once.
  CHECK_OK(fs.WriteFile("/mail/inbox/fresh.eml",
                        hac::GenerateEmail(rng, "alice", "me", "fingerprint", 40)));
  CHECK_OK(fs.Reindex());
  std::printf("after new alice/fingerprint mail + reindex: %zu\n",
              CountLinks(fs, "/mail/alice_fp"));
  return 0;
}
