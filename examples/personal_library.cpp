// Exporting a personal HAC file system as a "mini digital library" (section 3.2's
// closing idea) using whole-state persistence:
//
//   1. a user curates a classified collection over months (simulated),
//   2. SaveState() captures everything — files, queries, the edited link sets,
//   3. a second user loads the image, audits it with hacfsck, browses the curated
//      views, and mounts the loaded system semantically to search it.
#include <cstdio>

#include "src/core/hac_file_system.h"
#include "src/remote/remote_hac.h"
#include "src/support/rng.h"
#include "src/tools/fsck.h"
#include "src/tools/inspect.h"
#include "src/workload/corpus.h"

namespace {

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _r = (expr);                                                     \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s: %s\n", #expr,                       \
                   _r.error().ToString().c_str());                        \
      return 1;                                                           \
    }                                                                     \
  } while (0)

}  // namespace

int main() {
  using namespace hac;

  // --- The curator builds and tunes a collection ---
  HacFileSystem curator;
  CorpusOptions copts;
  copts.root = "/collection";
  copts.num_files = 120;
  copts.dirs = 6;
  copts.words_per_file = 120;
  CHECK_OK(GenerateCorpus(curator, copts));
  CHECK_OK(curator.Reindex());
  CHECK_OK(curator.SMkdir("/by_topic", ""));
  for (const char* topic : {"fingerprint", "astronomy", "chess"}) {
    CHECK_OK(curator.SMkdir(std::string("/by_topic/") + topic, topic));
  }
  // Months of curation, compressed: prune a couple of results, pin one outsider.
  auto fp_entries = curator.ReadDir("/by_topic/fingerprint").value();
  if (fp_entries.size() > 2) {
    CHECK_OK(curator.Unlink("/by_topic/fingerprint/" + fp_entries[0].name));
  }
  std::printf("curator's library:\n%s\n",
              DumpTree(curator, "/by_topic").value_or("?").c_str());

  // --- Export: one image holds the files AND the classification ---
  std::vector<uint8_t> image = curator.SaveState();
  std::printf("exported image: %zu bytes\n\n", image.size());

  // --- A reader imports it ---
  auto imported = HacFileSystem::LoadState(image);
  if (!imported.ok()) {
    std::fprintf(stderr, "FATAL LoadState: %s\n", imported.error().ToString().c_str());
    return 1;
  }
  HacFileSystem& library = *imported.value();
  FsckReport audit = RunFsck(library);
  std::printf("fsck of the imported library: %s\n", audit.ToString().c_str());

  // The curated views arrived intact — including the pruning.
  std::printf("imported /by_topic/fingerprint has %zu entries (curator pruned one)\n",
              library.ReadDir("/by_topic/fingerprint").value().size());
  std::printf("its query reads back as: %s\n\n",
              library.GetQuery("/by_topic/fingerprint").value_or("?").c_str());

  // --- The reader searches the imported library from their own file system ---
  HacFileSystem reader;
  RemoteHacNameSpace library_ns("library", &library, "/collection");
  CHECK_OK(reader.MkdirAll("/libraries/colleague"));
  CHECK_OK(reader.MountSemantic("/libraries/colleague", &library_ns));
  CHECK_OK(reader.SMkdir("/libraries/colleague/chess_finds", "chess AND endgame"));
  auto finds = reader.ReadDir("/libraries/colleague/chess_finds").value();
  std::printf("reader's search over the imported library found %zu documents:\n",
              finds.size());
  for (const auto& e : finds) {
    std::printf("  %s\n", e.name.c_str());
  }
  return 0;
}
