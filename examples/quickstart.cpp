// Quickstart: the smallest useful HAC session.
//
//   1. create a file system, add some files
//   2. index them
//   3. make a semantic directory with a query
//   4. list the links HAC created
//   5. tune the result by hand and watch consistency hold
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
#include <cstdio>

#include "src/core/hac_file_system.h"

using hac::HacFileSystem;

namespace {

void ListDir(HacFileSystem& fs, const std::string& dir) {
  std::printf("%s:\n", dir.c_str());
  auto entries = fs.ReadDir(dir);
  if (!entries.ok()) {
    std::printf("  error: %s\n", entries.error().ToString().c_str());
    return;
  }
  for (const auto& e : entries.value()) {
    if (e.type == hac::NodeType::kSymlink) {
      std::printf("  %-18s -> %s\n", e.name.c_str(),
                  fs.ReadLink(dir + "/" + e.name).value_or("?").c_str());
    } else {
      std::printf("  %s%s\n", e.name.c_str(),
                  e.type == hac::NodeType::kDirectory ? "/" : "");
    }
  }
}

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _r = (expr);                                                     \
    if (!_r.ok()) {                                                       \
      std::fprintf(stderr, "FATAL %s: %s\n", #expr,                       \
                   _r.error().ToString().c_str());                        \
      return 1;                                                           \
    }                                                                     \
  } while (0)

}  // namespace

int main() {
  HacFileSystem fs;

  // 1. Ordinary hierarchical usage — nothing semantic yet.
  CHECK_OK(fs.MkdirAll("/home/notes"));
  CHECK_OK(fs.WriteFile("/home/notes/fingerprints.txt",
                        "notes on fingerprint minutiae and ridge matching"));
  CHECK_OK(fs.WriteFile("/home/notes/recipes.txt",
                        "butter flour oven — the usual suspects"));
  CHECK_OK(fs.WriteFile("/home/notes/crime.txt",
                        "fingerprint evidence in the murder case"));

  // 2. Let the content-based access mechanism see the files.
  CHECK_OK(fs.Reindex());

  // 3. A semantic directory: a directory with a query.
  CHECK_OK(fs.SMkdir("/home/fp", "fingerprint AND NOT murder"));
  std::printf("created semantic directory with query: %s\n\n",
              fs.GetQuery("/home/fp").value().c_str());
  ListDir(fs, "/home/fp");

  // 4. Tune by hand: add a file the query missed...
  CHECK_OK(fs.Symlink("/home/notes/recipes.txt", "/home/fp/keep_this.txt"));
  // ...and the additions survive any re-evaluation:
  CHECK_OK(fs.SSync("/home/fp"));
  std::printf("\nafter manual addition + ssync:\n");
  ListDir(fs, "/home/fp");

  // 5. New content shows up at the next reindex.
  CHECK_OK(fs.WriteFile("/home/notes/scanner.txt", "fingerprint scanner drivers"));
  CHECK_OK(fs.Reindex());
  std::printf("\nafter creating scanner.txt + reindex:\n");
  ListDir(fs, "/home/fp");

  hac::StatsSnapshot stats = fs.Stats();
  std::printf("\nstats: %llu query evaluations, %llu links added, %llu docs indexed\n",
              static_cast<unsigned long long>(stats.query_evaluations),
              static_cast<unsigned long long>(stats.transient_links_added),
              static_cast<unsigned long long>(stats.docs_indexed));
  return 0;
}
